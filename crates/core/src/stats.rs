//! Discovery instrumentation.
//!
//! Every run of the engine produces a [`DiscoveryStats`]: the counter values
//! the paper's evaluation reports — PL items fetched (§7.5.4), rows filtered
//! vs. passed, false-positive rows and precision (Table 3), pruning-rule
//! activity (§6.2), and wall-clock time (Table 2 / Fig. 4).

use mate_table::ColId;
use std::time::Duration;

/// Counters collected by one discovery worker thread (or the single
/// sequential pass). The aggregate fields of [`DiscoveryStats`] are the
/// element-wise sums of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tables whose row scan this worker started.
    pub tables_evaluated: usize,
    /// Tables this worker abandoned mid-scan via filtering rule 2.
    pub tables_skipped_rule2: usize,
    /// Super-key containment checks this worker performed.
    pub rows_filter_checked: usize,
    /// Row pairs that passed the filter on this worker.
    pub rows_passed_filter: usize,
    /// Verified joinable row pairs on this worker.
    pub rows_verified_joinable: usize,
    /// Filter false positives on this worker.
    pub false_positive_rows: usize,
    /// True if a verification on this worker hit the mapping cap.
    pub mappings_capped: bool,
    /// Posting blocks this worker decoded (cold serving mode; always 0 on a
    /// hot arena store, which has no blocks).
    pub blocks_decoded: u64,
    /// Posting blocks this worker bypassed via their skip headers without
    /// touching the payload (cold serving mode).
    pub blocks_skipped: u64,
    /// Wall time this worker spent inside the candidate loop (busy time:
    /// excludes waiting for work to be partitioned, includes evaluation
    /// and verification). NOT summed by `fold_into` — per-worker busy
    /// times are reported side by side in [`QueryProfile`], not
    /// aggregated into run totals.
    ///
    /// [`QueryProfile`]: mate_obs::QueryProfile
    pub busy: Duration,
}

impl WorkerStats {
    /// Adds this worker's counters into the run-level aggregates.
    pub fn fold_into(&self, stats: &mut DiscoveryStats) {
        stats.tables_evaluated += self.tables_evaluated;
        stats.tables_skipped_rule2 += self.tables_skipped_rule2;
        stats.rows_filter_checked += self.rows_filter_checked;
        stats.rows_passed_filter += self.rows_passed_filter;
        stats.rows_verified_joinable += self.rows_verified_joinable;
        stats.false_positive_rows += self.false_positive_rows;
        stats.mappings_capped |= self.mappings_capped;
        stats.blocks_decoded += self.blocks_decoded;
        stats.blocks_skipped += self.blocks_skipped;
    }
}

/// Counters collected during one discovery run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiscoveryStats {
    /// The initial column that was selected (§6.1).
    pub initial_column: Option<ColId>,
    /// Distinct initial-column values that had a posting list.
    pub pl_lists_fetched: usize,
    /// Total posting-list items fetched through the initial column.
    pub pl_items_fetched: usize,
    /// Candidate tables after grouping the fetched PL items.
    pub candidate_tables: usize,
    /// Tables whose rows were actually evaluated.
    pub tables_evaluated: usize,
    /// Tables skipped mid-scan by filtering rule 2 (Algorithm 1 line 14).
    pub tables_skipped_rule2: usize,
    /// True if rule 1 fired and the scan stopped early (line 9).
    pub stopped_early_rule1: bool,
    /// Super-key containment checks performed (row filter, §6.3).
    pub rows_filter_checked: usize,
    /// Row pairs that passed the filter and went to verification.
    pub rows_passed_filter: usize,
    /// Verified joinable row pairs (true positives).
    pub rows_verified_joinable: usize,
    /// Row pairs that passed the filter but failed verification
    /// (false positives of the hash filter).
    pub false_positive_rows: usize,
    /// True if any verification hit the mapping-enumeration cap.
    pub mappings_capped: bool,
    /// Posting blocks decoded while evaluating candidates (cold serving
    /// mode; 0 on a hot index — see [`WorkerStats::blocks_decoded`]).
    pub blocks_decoded: u64,
    /// Posting blocks skipped via skip headers (cold serving mode).
    pub blocks_skipped: u64,
    /// Worker threads used by the per-table loop (1 = sequential).
    pub query_threads: usize,
    /// Posting layers that served the query: 0 when probing a plain
    /// hot/cold index directly, `cold segments + memtable shards` when
    /// running over the multi-segment engine (set by
    /// [`crate::engine_query::discover_engine`]; the shard count is
    /// [`EngineConfig::apply_shards`](mate_index::engine::EngineConfig::apply_shards)).
    pub source_layers: usize,
    /// Cold-layer resolutions answered by the lake's shared
    /// [`SourceCache`](mate_index::SourceCache) during this query (set by
    /// [`crate::engine_query::discover_lake`]; approximate when other
    /// queries run concurrently — the cache counters are lake-global).
    pub cold_cache_hits: u64,
    /// Cold-layer resolutions that had to walk the segment stack (see
    /// [`DiscoveryStats::cold_cache_hits`]).
    pub cold_cache_misses: u64,
    /// Page-cache hits while faulting cold segment bytes in during this
    /// query (set by [`crate::engine_query::discover_lake`]; approximate
    /// under concurrency — the pager counters are engine-global, like
    /// [`DiscoveryStats::cold_cache_hits`]). 0 when every cold layer the
    /// query touched was resident, or when probing a plain index.
    pub pager_hits: u64,
    /// Page-cache fills (pread round trips) the query's cold probes
    /// triggered (see [`DiscoveryStats::pager_hits`]).
    pub pager_misses: u64,
    /// Source epoch of the engine snapshot that served the query (set by
    /// [`crate::engine_query::discover_snapshot`] /
    /// [`crate::engine_query::discover_lake`]; 0 when probing a plain
    /// index). Every flush, compaction, promotion, and cold tombstone
    /// bumps the engine's epoch, so two queries reporting the same epoch
    /// observed the same layer structure.
    pub snapshot_epoch: u64,
    /// How many epochs the served snapshot was behind the lake's published
    /// state when the query finished (set by
    /// [`crate::engine_query::discover_lake`]) — the snapshot-age counter.
    /// 0 means the query ran over the newest published state; a non-zero
    /// lag means writers advanced mid-query, which snapshot serving makes
    /// harmless (the query's view stayed pinned).
    pub snapshot_lag: u64,
    /// Per-worker counter breakdown for parallel runs (empty when
    /// sequential; the aggregate fields above are their sums).
    pub per_worker: Vec<WorkerStats>,
    /// Wall-clock time of the discovery run.
    pub elapsed: Duration,
    /// Wall-clock time of the init phase alone (initial-column selection,
    /// key-map build, candidate collection and ordering) — the prefix of
    /// `elapsed` before the candidate loop started.
    pub init_elapsed: Duration,
}

impl DiscoveryStats {
    /// Filter precision `TP / (TP + FP)` over the row pairs that reached
    /// verification (Table 3 of the paper). A run in which nothing passed
    /// the filter produced no false positives and scores 1.0.
    pub fn precision(&self) -> f64 {
        let tp = self.rows_verified_joinable as f64;
        let fp = self.false_positive_rows as f64;
        if tp + fp == 0.0 {
            1.0
        } else {
            tp / (tp + fp)
        }
    }

    /// Fraction of filter checks that passed (lower = stronger filter).
    pub fn filter_pass_rate(&self) -> f64 {
        if self.rows_filter_checked == 0 {
            0.0
        } else {
            self.rows_passed_filter as f64 / self.rows_filter_checked as f64
        }
    }

    /// Condenses the run's counters into a flat [`mate_obs::QueryProfile`]
    /// (where the query spent its time and I/O budget). For a sequential
    /// run the single "worker"'s busy time is `elapsed - init_elapsed`.
    pub fn profile(&self) -> mate_obs::QueryProfile {
        let worker_busy_us = if self.per_worker.is_empty() {
            vec![self.elapsed.saturating_sub(self.init_elapsed).as_micros() as u64]
        } else {
            self.per_worker
                .iter()
                .map(|w| w.busy.as_micros() as u64)
                .collect()
        };
        mate_obs::QueryProfile {
            init_us: self.init_elapsed.as_micros() as u64,
            total_us: self.elapsed.as_micros() as u64,
            worker_busy_us,
            postings_probed: self.pl_items_fetched as u64,
            blocks_decoded: self.blocks_decoded,
            blocks_skipped: self.blocks_skipped,
            cache_hits: self.cold_cache_hits,
            cache_misses: self.cold_cache_misses,
            snapshot_lag: self.snapshot_lag,
        }
    }
}

/// Mirrors the counter fields of a [`DiscoveryStats`] into `obs` as gauges
/// under the `discovery_stats.` prefix, completing the unified metric
/// catalog alongside `export_engine_stats` and `export_index_stats`
/// (gauges, not counters: a stats struct is one run's snapshot — callers
/// export the run they want visible, typically the latest).
pub fn export_discovery_stats(obs: &mate_obs::Obs, stats: &DiscoveryStats) {
    let pairs: [(&str, u64); 18] = [
        ("pl_lists_fetched", stats.pl_lists_fetched as u64),
        ("pl_items_fetched", stats.pl_items_fetched as u64),
        ("candidate_tables", stats.candidate_tables as u64),
        ("tables_evaluated", stats.tables_evaluated as u64),
        ("tables_skipped_rule2", stats.tables_skipped_rule2 as u64),
        ("stopped_early_rule1", stats.stopped_early_rule1 as u64),
        ("rows_filter_checked", stats.rows_filter_checked as u64),
        ("rows_passed_filter", stats.rows_passed_filter as u64),
        (
            "rows_verified_joinable",
            stats.rows_verified_joinable as u64,
        ),
        ("false_positive_rows", stats.false_positive_rows as u64),
        ("blocks_decoded", stats.blocks_decoded),
        ("blocks_skipped", stats.blocks_skipped),
        ("query_threads", stats.query_threads as u64),
        ("snapshot_lag", stats.snapshot_lag),
        ("pager_hits", stats.pager_hits),
        ("pager_misses", stats.pager_misses),
        ("elapsed_us", stats.elapsed.as_micros() as u64),
        ("init_elapsed_us", stats.init_elapsed.as_micros() as u64),
    ];
    for (name, v) in pairs {
        obs.gauge(&format!("discovery_stats.{name}")).set(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basic() {
        let s = DiscoveryStats {
            rows_verified_joinable: 30,
            false_positive_rows: 10,
            ..Default::default()
        };
        assert!((s.precision() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn precision_empty_is_one() {
        assert_eq!(DiscoveryStats::default().precision(), 1.0);
    }

    #[test]
    fn pass_rate() {
        let s = DiscoveryStats {
            rows_filter_checked: 200,
            rows_passed_filter: 50,
            ..Default::default()
        };
        assert!((s.filter_pass_rate() - 0.25).abs() < 1e-9);
        assert_eq!(DiscoveryStats::default().filter_pass_rate(), 0.0);
    }
}
