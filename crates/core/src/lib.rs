//! The MATE discovery engine (Algorithm 1 of the paper).
//!
//! Given a query table `d`, a composite key `Q ⊂ columns(d)`, and `k`, MATE
//! returns the top-k corpus tables by joinability
//! `j(d, T) = max over column mappings |π_Q(d) ∩ π_Y'(T)|` (Eq. 2), in four
//! phases:
//!
//! 1. **Initialization** (§6.1, [`init_column`]): pick one key column via a
//!    cardinality heuristic, fetch its posting lists, group them per table
//!    (sorted by hit count, descending), and build the query-side super keys
//!    ([`query_keys`]).
//! 2. **Table filtering** (§6.2, in [`discovery`]): prune tables whose hit
//!    count — or whose remaining unchecked rows plus matches so far — cannot
//!    beat the current k-th best joinability ([`topk`]).
//! 3. **Row filtering** (§6.3): one bitwise containment check per candidate
//!    row against the stored super key; no false negatives.
//! 4. **Joinability calculation** ([`joinability`]): fetch surviving rows
//!    from the corpus and compute the exact best-mapping joinability.
//!
//! [`DiscoveryStats`] instruments every phase (PL items fetched, rows
//! filtered, false positives, precision) — the quantities Tables 2–3 and
//! Figures 4–6 of the paper report.
//!
//! Phases 2–4 run on a worker pool when [`MateConfig::query_threads`] ≥ 2,
//! with a shared atomic `j_k` floor keeping both pruning rules sound across
//! workers and a deterministic merge keeping results bit-identical to the
//! sequential engine (see [`discovery`]).

#![warn(missing_docs)]

pub mod config;
pub mod discovery;
pub mod durable;
pub mod engine_query;
pub mod init_column;
pub mod joinability;
pub mod query_keys;
pub mod stats;
pub mod topk;

pub use config::{InitColumnHeuristic, MateConfig};
pub use discovery::{DiscoveryResult, MateDiscovery, TableResult};
pub use durable::DurableLake;
pub use engine_query::{
    discover_engine, discover_lake, discover_snapshot, discover_snapshot_profiled,
};
pub use joinability::verify_table_joinability;
pub use stats::{export_discovery_stats, DiscoveryStats, WorkerStats};
pub use topk::TopK;
