//! Bounded top-k heap over `(joinability, table)` results.
//!
//! The table-filtering rules of §6.2 compare candidate bounds against the
//! *worst* table currently in the top-k (`j_k`), so the heap is a min-heap
//! with O(log k) updates. Only tables with `j > 0` enter (a table with no
//! joinable row is not "joinable").

use mate_table::TableId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One discovered table with its joinability score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableResult {
    /// The corpus table.
    pub table: TableId,
    /// Joinability `j` (Eq. 2): number of distinct query key combinations
    /// present under the best column mapping.
    pub joinability: u64,
}

/// Min-heap keeping the `k` best `(j, table)` pairs.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    // Reverse<(j, Reverse(table))>: pop order = lowest j first, and among
    // equal j the *highest* table id first, so earlier-discovered tables win
    // ties deterministically.
    heap: BinaryHeap<Reverse<(u64, Reverse<u32>)>>,
}

impl TopK {
    /// Creates a heap bounded to `k` entries.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// True once the heap holds `k` tables (only then may pruning rules
    /// fire — Algorithm 1 lines 9 and 14).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Joinability of the worst table in the current top-k (`j_k`), or 0 if
    /// the heap is not full yet.
    #[inline]
    pub fn min_joinability(&self) -> u64 {
        if self.is_full() {
            self.heap.peek().map_or(0, |Reverse((j, _))| *j)
        } else {
            0
        }
    }

    /// Offers a result; tables with `j == 0` are ignored, and a full heap
    /// only admits strictly better scores.
    pub fn update(&mut self, table: TableId, joinability: u64) {
        if joinability == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse((joinability, Reverse(table.0))));
        } else if joinability > self.min_joinability() {
            self.heap.push(Reverse((joinability, Reverse(table.0))));
            self.heap.pop();
        }
    }

    /// Number of tables currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no table has been admitted.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finishes and returns results sorted by joinability descending
    /// (ties: lower table id first).
    pub fn into_sorted(self) -> Vec<TableResult> {
        let mut v: Vec<TableResult> = self
            .heap
            .into_iter()
            .map(|Reverse((j, Reverse(t)))| TableResult {
                table: TableId(t),
                joinability: j,
            })
            .collect();
        v.sort_unstable_by(|a, b| {
            b.joinability
                .cmp(&a.joinability)
                .then(a.table.0.cmp(&b.table.0))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_best() {
        let mut t = TopK::new(3);
        for (id, j) in [(0u32, 5u64), (1, 2), (2, 9), (3, 7), (4, 1)] {
            t.update(TableId(id), j);
        }
        let r = t.into_sorted();
        assert_eq!(
            r,
            vec![
                TableResult {
                    table: TableId(2),
                    joinability: 9
                },
                TableResult {
                    table: TableId(3),
                    joinability: 7
                },
                TableResult {
                    table: TableId(0),
                    joinability: 5
                },
            ]
        );
    }

    #[test]
    fn min_joinability_only_when_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.min_joinability(), 0);
        t.update(TableId(0), 10);
        assert!(!t.is_full());
        assert_eq!(t.min_joinability(), 0); // not full yet → rules must not fire
        t.update(TableId(1), 4);
        assert!(t.is_full());
        assert_eq!(t.min_joinability(), 4);
    }

    #[test]
    fn zero_scores_ignored() {
        let mut t = TopK::new(2);
        t.update(TableId(0), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn equal_scores_do_not_replace() {
        let mut t = TopK::new(1);
        t.update(TableId(0), 5);
        t.update(TableId(1), 5);
        let r = t.into_sorted();
        assert_eq!(r[0].table, TableId(0));
    }

    #[test]
    fn tie_order_prefers_lower_id() {
        let mut t = TopK::new(3);
        t.update(TableId(7), 5);
        t.update(TableId(3), 5);
        t.update(TableId(5), 5);
        let r = t.into_sorted();
        assert_eq!(
            r.iter().map(|x| x.table.0).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
    }

    #[test]
    fn eviction_keeps_better_tie() {
        // Full heap of j=5s; a 6 must evict exactly one 5 (the latest-id one).
        let mut t = TopK::new(2);
        t.update(TableId(1), 5);
        t.update(TableId(2), 5);
        t.update(TableId(3), 6);
        let r = t.into_sorted();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r[0],
            TableResult {
                table: TableId(3),
                joinability: 6
            }
        );
        assert_eq!(
            r[1],
            TableResult {
                table: TableId(1),
                joinability: 5
            }
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        TopK::new(0);
    }
}
