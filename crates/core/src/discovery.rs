//! The MATE discovery engine — Algorithm 1 of the paper, sequential or
//! multi-threaded, over either serving mode.
//!
//! # Serving modes
//!
//! The engine reads posting lists through the [`PostingSource`] trait, so
//! one implementation of Algorithm 1 serves both the hot arena-backed
//! [`InvertedIndex`] and the cold, block-compressed [`ColdIndex`] — and is
//! property-tested to return identical results on both.
//!
//! Probes are **positional**: the initialization phase groups candidates by
//! table using only `table_runs` (cold mode decodes just the table-id
//! streams — column/row payloads stay untouched), recording `(list, start,
//! len)` runs instead of materialized entries. A candidate's entries are
//! decoded by `collect_run` only when the per-table loop actually evaluates
//! it, so everything the §6.2 pruning rules skip is never decoded at all.
//! In cold mode the per-block skip headers bound each `collect_run` to the
//! blocks overlapping the run; [`DiscoveryStats::blocks_decoded`] /
//! [`DiscoveryStats::blocks_skipped`] count the effect.
//!
//! # Parallel discovery
//!
//! With [`MateConfig::query_threads`] ≥ 2, the per-candidate-table loop
//! (posting-group scan → super-key row filtering → `calculateJ`
//! verification) runs on a crossbeam-scoped worker pool. Workers pull
//! candidates from the PL-count-sorted list through an atomic cursor and
//! share the current top-k floor `j_k` through an `AtomicU64`, so the two
//! table-filtering rules of §6.2 keep pruning across workers.
//!
//! The result is **bit-identical** to the sequential engine:
//!
//! * The shared floor is the k-th best joinability of the *subset* of tables
//!   finished so far, which never exceeds the final `j_k`. Parallel pruning
//!   compares bounds with **strict** `<` (the sequential engine uses `≤`):
//!   a pruned table has `j ≤ bound < floor ≤ final j_k`, so it can never
//!   belong to the final top-k — not even as a tie, since ties at `j_k`
//!   never evict. Sequential `≤`-pruning is equally lossless, so both paths
//!   drop only tables the full scan would discard anyway.
//! * Workers record `(candidate position, table, j)` for every table they
//!   fully evaluate; the merge replays those in candidate order into a fresh
//!   [`TopK`], reproducing the sequential tie-breaking exactly.
//!
//! Because the sorted candidate order makes rule 1 a *global* stop ("no
//! later table can win either"), the first worker that proves it raises a
//! shared stop flag instead of merely skipping its own candidate.

use crate::config::MateConfig;
use crate::init_column::select_initial_column;
use crate::joinability::{verify_table_joinability, RowPair};
use crate::query_keys::QueryKeyMap;
use crate::stats::{DiscoveryStats, WorkerStats};
pub use crate::topk::TableResult;
use crate::topk::TopK;
use mate_hash::fx::FxHashMap;
use mate_hash::{covers, RowHasher};
use mate_index::{
    ColdIndex, InvertedIndex, ListHandle, PostingEntry, PostingSource, ProbeScratch, SuperKeyStore,
};
use mate_table::{ColId, Corpus, Table, TableId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Output of a discovery run: the top-k joinable tables plus instrumentation.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// Top-k tables sorted by joinability descending.
    pub top_k: Vec<TableResult>,
    /// Counters and timing for this run.
    pub stats: DiscoveryStats,
}

/// One value's contiguous slice of posting entries inside one candidate
/// table: resolved positionally during initialization, decoded only if the
/// candidate is evaluated.
#[derive(Debug, Clone, Copy)]
struct ValueRun {
    /// Dense id of the query value (index into the run's `values`).
    vid: u32,
    /// The posting list in the source.
    list: ListHandle,
    /// First entry of the run within the list.
    start: u32,
    /// Entries in the run.
    len: u32,
}

/// The discovery engine. Borrows the corpus (for verification), a posting
/// source plus super-key store (hot [`InvertedIndex`] or cold
/// [`ColdIndex`]), and the hash function that built the index (for
/// query-side super keys).
pub struct MateDiscovery<'a> {
    corpus: &'a Corpus,
    source: &'a dyn PostingSource,
    superkeys: &'a SuperKeyStore,
    hasher: &'a dyn RowHasher,
    config: MateConfig,
}

impl<'a> MateDiscovery<'a> {
    /// Creates an engine with the default configuration.
    ///
    /// # Panics
    /// Panics if `hasher` does not match the index (size or kind).
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, hasher: &'a dyn RowHasher) -> Self {
        Self::with_config(corpus, index, hasher, MateConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        hasher: &'a dyn RowHasher,
        config: MateConfig,
    ) -> Self {
        assert_eq!(
            hasher.name(),
            index.hasher_name(),
            "hasher kind does not match index"
        );
        Self::from_parts(corpus, index.store(), index.superkeys(), hasher, config)
    }

    /// Creates an engine over a cold (segment-serving) index with the
    /// default configuration.
    ///
    /// # Panics
    /// Panics if `hasher` does not match the index (size or kind).
    pub fn cold(corpus: &'a Corpus, index: &'a ColdIndex, hasher: &'a dyn RowHasher) -> Self {
        Self::cold_with_config(corpus, index, hasher, MateConfig::default())
    }

    /// Cold-mode engine with an explicit configuration.
    pub fn cold_with_config(
        corpus: &'a Corpus,
        index: &'a ColdIndex,
        hasher: &'a dyn RowHasher,
        config: MateConfig,
    ) -> Self {
        assert_eq!(
            hasher.name(),
            index.hasher_name(),
            "hasher kind does not match index"
        );
        Self::from_parts(corpus, index.store(), index.superkeys(), hasher, config)
    }

    /// Creates an engine from a bare posting source + super-key store (the
    /// named constructors above are sugar over this).
    ///
    /// # Panics
    /// Panics if the hasher size does not match the super keys.
    pub fn from_parts(
        corpus: &'a Corpus,
        source: &'a dyn PostingSource,
        superkeys: &'a SuperKeyStore,
        hasher: &'a dyn RowHasher,
        config: MateConfig,
    ) -> Self {
        assert_eq!(
            hasher.hash_size(),
            superkeys.hash_size(),
            "hasher size does not match index"
        );
        MateDiscovery {
            corpus,
            source,
            superkeys,
            hasher,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MateConfig {
        &self.config
    }

    /// Finds the top-`k` tables joinable with `query` on the composite key
    /// `q_cols` (Algorithm 1). Runs on [`MateConfig::query_threads`] worker
    /// threads; any thread count returns results bit-identical to the
    /// sequential engine.
    ///
    /// # Panics
    /// Panics if `q_cols` is empty, contains duplicates, or indexes columns
    /// that do not exist in `query`.
    pub fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        let obs = self.config.obs.clone();
        let _span = obs.span("discovery");
        let clock = obs.clock();
        let start_nanos = clock.now_nanos();
        validate_key(query, q_cols);
        let mut stats = DiscoveryStats::default();

        // ---- Initialization (lines 3-6) --------------------------------
        let initial = select_initial_column(query, q_cols, self.config.heuristic, self.source);
        stats.initial_column = Some(initial);

        let key_map = QueryKeyMap::build(query, q_cols, initial, self.hasher);

        // Resolve the PL of every distinct initial-column value and group it
        // by table — positionally (table runs), without decoding entries.
        let mut by_table: FxHashMap<u32, Vec<ValueRun>> = FxHashMap::default();
        let mut values: Vec<&str> = Vec::new();
        {
            let mut scratch = ProbeScratch::new();
            let mut seen: FxHashMap<&str, u32> = FxHashMap::default();
            for v in &query.column(initial).values {
                if v.is_empty() || seen.contains_key(v.as_str()) {
                    continue;
                }
                // Only values that reach at least one usable query row matter.
                if key_map.rows_for(v).is_empty() {
                    continue;
                }
                let vid = values.len() as u32;
                seen.insert(v, vid);
                values.push(v);
                if let Some(list) = self.source.find_list(v, &mut scratch) {
                    stats.pl_lists_fetched += 1;
                    stats.pl_items_fetched += list.len as usize;
                    let mut at = 0u32;
                    self.source
                        .table_runs(list, &mut scratch, &mut |table, len| {
                            by_table.entry(table).or_default().push(ValueRun {
                                vid,
                                list,
                                start: at,
                                len,
                            });
                            at += len;
                        });
                }
            }
        }

        // Sort candidate tables by PL-item count descending (line 5); ties by
        // table id for determinism.
        let mut candidates: Vec<(u32, Vec<ValueRun>, usize)> = by_table
            .into_iter()
            .map(|(tid, runs)| {
                let l_t = runs.iter().map(|r| r.len as usize).sum();
                (tid, runs, l_t)
            })
            .collect();
        candidates.sort_unstable_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        stats.candidate_tables = candidates.len();
        stats.init_elapsed = Duration::from_nanos(clock.now_nanos().saturating_sub(start_nanos));

        let threads = self.config.query_threads.max(1);
        stats.query_threads = threads;
        let shared = SharedCtx {
            corpus: self.corpus,
            source: self.source,
            superkeys: self.superkeys,
            config: &self.config,
            clock: clock.as_ref(),
            query,
            q_cols,
            key_map: &key_map,
            values: &values,
        };
        let top_k = if threads <= 1 || candidates.len() < 2 {
            Self::discover_sequential(&shared, &candidates, k, &mut stats)
        } else {
            Self::discover_parallel(&shared, &candidates, k, threads, &mut stats)
        };

        stats.elapsed = Duration::from_nanos(clock.now_nanos().saturating_sub(start_nanos));
        DiscoveryResult { top_k, stats }
    }

    /// The sequential per-table loop (line 7), exactly the seed engine.
    fn discover_sequential(
        ctx: &SharedCtx<'_>,
        candidates: &[(u32, Vec<ValueRun>, usize)],
        k: usize,
        stats: &mut DiscoveryStats,
    ) -> Vec<TableResult> {
        let mut topk = TopK::new(k);
        let mut worker = WorkerStats::default();
        let mut probe = ProbeState::default();

        for (tid_raw, runs, l_t) in candidates {
            // Table filtering rule 1 (line 9): tables are sorted, so once the
            // PL count cannot beat j_k nothing later can either.
            if ctx.config.table_filtering && topk.is_full() && *l_t as u64 <= topk.min_joinability()
            {
                stats.stopped_early_rule1 = true;
                break;
            }

            let floor = if ctx.config.table_filtering && topk.is_full() {
                // Sequential rule 2 abandons when the bound is ≤ j_k.
                Some(topk.min_joinability() + 1)
            } else {
                None
            };
            match evaluate_candidate(
                ctx,
                TableId(*tid_raw),
                runs,
                *l_t,
                floor,
                &mut worker,
                &mut probe,
            ) {
                Some(joinability) => topk.update(TableId(*tid_raw), joinability),
                None => continue,
            }
        }

        worker.fold_into(stats);
        stats.per_worker.clear(); // sequential runs report aggregates only
        topk.into_sorted()
    }

    /// The parallel per-table loop: an atomic cursor over the sorted
    /// candidates, a shared `j_k` floor, and a deterministic merge.
    fn discover_parallel(
        ctx: &SharedCtx<'_>,
        candidates: &[(u32, Vec<ValueRun>, usize)],
        k: usize,
        threads: usize,
        stats: &mut DiscoveryStats,
    ) -> Vec<TableResult> {
        // 0 while the shared top-k is not full; `j_k` once it is (admitted
        // scores are ≥ 1, so 0 is a safe sentinel).
        // obs-exempt: pruning-protocol state shared between workers, not a metric.
        let floor = AtomicU64::new(0);
        let cursor = AtomicUsize::new(0);
        let stopped = AtomicBool::new(false);
        let shared_topk = Mutex::new(TopK::new(k));
        // One slot per worker: (candidate position, table, j) + counters.
        type WorkerOut = (Vec<(usize, u32, u64)>, WorkerStats, bool);
        let mut outputs: Vec<Option<WorkerOut>> = Vec::new();
        outputs.resize_with(threads, || None);

        crossbeam::thread::scope(|scope| {
            for slot in outputs.iter_mut() {
                let floor = &floor;
                let cursor = &cursor;
                let stopped = &stopped;
                let shared_topk = &shared_topk;
                scope.spawn(move |_| {
                    let busy_start = ctx.clock.now_nanos();
                    let mut results: Vec<(usize, u32, u64)> = Vec::new();
                    let mut worker = WorkerStats::default();
                    let mut probe = ProbeState::default();
                    let mut hit_rule1 = false;
                    loop {
                        if stopped.load(Ordering::Relaxed) {
                            break;
                        }
                        // Snapshot the floor *before* claiming: every score
                        // in it then comes from candidates claimed earlier,
                        // i.e. positions before ours — a subset of what the
                        // sequential engine knows at this position. That
                        // keeps parallel pruning weaker-or-equal, so the
                        // evaluated set is a superset of the sequential one
                        // (the per-worker stats tests rely on this; reading
                        // the floor after claiming could see scores of
                        // *later* candidates and over-prune).
                        let jk = floor.load(Ordering::Relaxed);
                        let at = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((tid_raw, runs, l_t)) = candidates.get(at) else {
                            break;
                        };

                        // Rule 1, strict form: the shared floor never exceeds
                        // the final j_k, so `l_t < floor` proves this table —
                        // and every later (smaller) one — is out.
                        if ctx.config.table_filtering && jk > 0 && (*l_t as u64) < jk {
                            stopped.store(true, Ordering::Relaxed);
                            hit_rule1 = true;
                            break;
                        }

                        let floor_arg = if ctx.config.table_filtering && jk > 0 {
                            Some(jk)
                        } else {
                            None
                        };
                        let Some(joinability) = evaluate_candidate(
                            ctx,
                            TableId(*tid_raw),
                            runs,
                            *l_t,
                            floor_arg,
                            &mut worker,
                            &mut probe,
                        ) else {
                            continue;
                        };
                        results.push((at, *tid_raw, joinability));
                        if joinability > 0 {
                            // panic-exempt: poisoning means a sibling
                            // worker panicked, and that panic propagates
                            // at the scope join below anyway — this
                            // thread's result is discarded either way.
                            let mut topk = shared_topk.lock().expect("topk lock");
                            topk.update(TableId(*tid_raw), joinability);
                            if topk.is_full() {
                                // Floors from different workers only ever
                                // grow; store keeps the freshest k-th best.
                                floor.store(topk.min_joinability(), Ordering::Relaxed);
                            }
                        }
                    }
                    worker.busy =
                        Duration::from_nanos(ctx.clock.now_nanos().saturating_sub(busy_start));
                    *slot = Some((results, worker, hit_rule1));
                });
            }
        })
        // panic-exempt: deliberate propagation — a worker's panic must
        // surface on the calling thread, not produce a partial top-k.
        .expect("discovery worker panicked");

        // Deterministic merge: replay fully-evaluated tables in candidate
        // order into a fresh top-k — identical tie-breaking to sequential.
        let mut merged: Vec<(usize, u32, u64)> = Vec::new();
        for slot in outputs {
            // panic-exempt: every worker fills its slot before its scope
            // ends, and a panicked worker already propagated above.
            let (results, worker, hit_rule1) = slot.expect("worker did not report");
            merged.extend(results);
            stats.stopped_early_rule1 |= hit_rule1;
            worker.fold_into(stats);
            stats.per_worker.push(worker);
        }
        merged.sort_unstable_by_key(|&(at, _, _)| at);
        let mut topk = TopK::new(k);
        for (_, tid_raw, joinability) in merged {
            topk.update(TableId(tid_raw), joinability);
        }
        topk.into_sorted()
    }
}

/// Read-only state shared by every worker of one discovery run.
struct SharedCtx<'a> {
    corpus: &'a Corpus,
    source: &'a dyn PostingSource,
    superkeys: &'a SuperKeyStore,
    config: &'a MateConfig,
    clock: &'a dyn mate_obs::Clock,
    query: &'a Table,
    q_cols: &'a [ColId],
    key_map: &'a QueryKeyMap,
    values: &'a [&'a str],
}

/// Per-worker probe state: the source scratch plus the run decode buffer.
/// Reused across every candidate a worker evaluates, so cold-mode decoding
/// allocates nothing in the steady state.
#[derive(Default)]
struct ProbeState {
    scratch: ProbeScratch,
    entries: Vec<PostingEntry>,
}

/// Runs row filtering (lines 13-20) and `calculateJ` (lines 21-22) for one
/// candidate table, decoding each value run on demand through the posting
/// source.
///
/// `floor` is the pruning threshold for table-filtering rule 2 (line 14):
/// the table is abandoned (returning `None`) once even a perfect remainder
/// could not reach `floor`. Sequential callers pass `j_k + 1` (the seed's
/// `≤ j_k` test); parallel callers pass the shared floor itself, whose
/// strict `<` comparison stays lossless while other workers are still
/// raising it.
fn evaluate_candidate(
    ctx: &SharedCtx<'_>,
    tid: TableId,
    runs: &[ValueRun],
    l_t: usize,
    floor: Option<u64>,
    worker: &mut WorkerStats,
    probe: &mut ProbeState,
) -> Option<u64> {
    worker.tables_evaluated += 1;
    let mut r_checked = 0usize;
    let mut r_match = 0usize;
    let mut pairs: Vec<RowPair> = Vec::new();
    // (candidate row, query row) → did it pass the super-key filter?
    // Memoizing failures too keeps this a single probe per occurrence (the
    // same pair resurfaces when a value hits several columns of one row).
    let mut seen_pairs: FxHashMap<(u32, u32), bool> = FxHashMap::default();

    // ---- Row filtering (lines 13-20) ----------------------------------
    for run in runs {
        // Decode this value's entries for the candidate (hot: a slice copy;
        // cold: only the blocks the run overlaps — the skip headers bound
        // the decode before any payload is touched).
        let mut counters = mate_index::ProbeCounters::default();
        probe.entries.clear();
        ctx.source.collect_run(
            run.list,
            run.start,
            run.len,
            &mut probe.scratch,
            &mut probe.entries,
            &mut counters,
        );
        worker.blocks_decoded += counters.decoded;
        worker.blocks_skipped += counters.skipped;
        let value = ctx.values[run.vid as usize];

        for entry in &probe.entries {
            // Table filtering rule 2 (line 14): even if every remaining row
            // matched, the table cannot reach the floor.
            if let Some(floor) = floor {
                if ((l_t - r_checked + r_match) as u64) < floor {
                    // The table stays counted in `tables_evaluated` (its row
                    // scan started) — the seed's accounting.
                    worker.tables_skipped_rule2 += 1;
                    return None;
                }
            }
            r_checked += 1;

            let superkey = ctx.superkeys.key(entry.table, entry.row);
            let mut entry_matched = false;
            for qk in ctx.key_map.rows_for(value) {
                let pair_key = (entry.row.0, qk.row.0);
                match seen_pairs.entry(pair_key) {
                    std::collections::hash_map::Entry::Occupied(seen) => {
                        entry_matched |= *seen.get();
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let passes = if ctx.config.row_filtering {
                            worker.rows_filter_checked += 1;
                            covers(superkey, qk.superkey.words())
                        } else {
                            true
                        };
                        slot.insert(passes);
                        if passes {
                            pairs.push(RowPair {
                                candidate_row: entry.row,
                                query_row: qk.row,
                                tuple_id: qk.tuple_id,
                            });
                            entry_matched = true;
                        }
                    }
                }
            }
            if entry_matched {
                r_match += 1;
            }
        }
    }
    worker.rows_passed_filter += pairs.len();

    // ---- calculateJ (lines 21-22) --------------------------------------
    let candidate = ctx.corpus.table(tid);
    let outcome = verify_table_joinability(
        candidate,
        ctx.query,
        ctx.q_cols,
        &pairs,
        ctx.config.max_mappings_per_row,
    );
    worker.rows_verified_joinable += outcome.true_positive_pairs;
    worker.false_positive_rows += outcome.pairs_checked - outcome.true_positive_pairs;
    worker.mappings_capped |= outcome.mappings_capped;
    Some(outcome.joinability)
}

fn validate_key(query: &Table, q_cols: &[ColId]) {
    assert!(
        !q_cols.is_empty(),
        "composite key must have at least one column"
    );
    let mut seen = std::collections::HashSet::new();
    for &c in q_cols {
        assert!(c.index() < query.num_cols(), "key column {c} out of bounds");
        assert!(seen.insert(c), "duplicate key column {c}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    /// Figure 1 of the paper plus distractor tables.
    fn setup() -> (Corpus, InvertedIndex, Xash, Table) {
        let mut corpus = Corpus::new();
        // T0: the joinable table of the running example.
        corpus.add_table(
            TableBuilder::new("T1", ["Vorname", "Nachname", "Land", "Besetzung"])
                .row(["Helmut", "Newton", "Germany", "Photographer"])
                .row(["Muhammad", "Lee", "US", "Dancer"])
                .row(["Ansel", "Adams", "UK", "Dancer"])
                .row(["Ansel", "Adams", "US", "Photographer"])
                .row(["Muhammad", "Ali", "US", "Boxer"])
                .row(["Muhammad", "Lee", "Germany", "Birder"])
                .row(["Gretchen", "Lee", "Germany", "Artist"])
                .row(["Adam", "Sandler", "US", "Actor"])
                .build(),
        );
        // T1: shares individual values but only 2 full key combos.
        corpus.add_table(
            TableBuilder::new("T2", ["first", "last", "country"])
                .row(["Muhammad", "Lee", "US"])
                .row(["Helmut", "Newton", "Germany"])
                .row(["Muhammad", "Smith", "US"])
                .build(),
        );
        // T2: unary hits only (classic FP table for single-column systems).
        corpus.add_table(
            TableBuilder::new("T3", ["name", "city"])
                .row(["Muhammad", "Cairo"])
                .row(["Ansel", "SF"])
                .row(["Helmut", "Berlin"])
                .build(),
        );
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let query = TableBuilder::new("d", ["F. Name", "L. Name", "Country", "Salary"])
            .row(["Muhammad", "Lee", "US", "60k"])
            .row(["Ansel", "Adams", "UK", "50k"])
            .row(["Ansel", "Adams", "US", "400k"])
            .row(["Muhammad", "Lee", "Germany", "90k"])
            .row(["Helmut", "Newton", "Germany", "300k"])
            .build();
        (corpus, index, hasher, query)
    }

    #[test]
    fn running_example_top1() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 1);
        assert_eq!(r.top_k.len(), 1);
        assert_eq!(r.top_k[0].table, TableId(0));
        assert_eq!(r.top_k[0].joinability, 5);
    }

    #[test]
    fn top2_includes_partial_table() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 2);
        assert_eq!(r.top_k.len(), 2);
        assert_eq!(r.top_k[0].table, TableId(0));
        assert_eq!(r.top_k[0].joinability, 5);
        assert_eq!(r.top_k[1].table, TableId(1));
        // T2 contains (Muhammad,Lee,US) and (Helmut,Newton,Germany).
        assert_eq!(r.top_k[1].joinability, 2);
    }

    #[test]
    fn unary_only_table_not_joinable() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 3);
        // T3 never contains a full key combo → j = 0 → excluded entirely.
        assert_eq!(r.top_k.len(), 2);
        assert!(r.top_k.iter().all(|t| t.table != TableId(2)));
    }

    #[test]
    fn no_false_negatives_vs_unfiltered() {
        // With row filtering on and off the reported top-k must be identical
        // (the super key never drops a joinable row).
        let (corpus, index, hasher, query) = setup();
        let on = MateDiscovery::new(&corpus, &index, &hasher).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            3,
        );
        let off_cfg = MateConfig {
            row_filtering: false,
            ..Default::default()
        };
        let off = MateDiscovery::with_config(&corpus, &index, &hasher, off_cfg).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            3,
        );
        assert_eq!(on.top_k, off.top_k);
        // And the filter never passes more rows than the unfiltered run.
        assert!(on.stats.rows_passed_filter <= off.stats.rows_passed_filter);
    }

    #[test]
    fn stats_are_populated() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 1);
        let s = &r.stats;
        assert!(s.initial_column.is_some());
        assert!(s.pl_items_fetched > 0);
        assert!(s.candidate_tables >= 2);
        assert!(s.tables_evaluated >= 1);
        assert!(s.rows_filter_checked > 0);
        assert!(s.rows_verified_joinable >= 5);
        assert!(s.precision() > 0.0);
        assert_eq!(s.query_threads, 1);
        assert!(s.per_worker.is_empty());
    }

    #[test]
    fn single_column_key_works() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(2)], 1);
        // Countries: us, uk, germany — T1 contains all three → j = 3.
        assert_eq!(r.top_k[0].joinability, 3);
    }

    #[test]
    fn k_larger_than_matches() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 50);
        assert_eq!(r.top_k.len(), 2);
    }

    #[test]
    fn query_with_no_hits() {
        let (corpus, index, hasher, _) = setup();
        let query = TableBuilder::new("d", ["a", "b"])
            .row(["zzzznope", "yyyynope"])
            .build();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1)], 5);
        assert!(r.top_k.is_empty());
        assert_eq!(r.stats.candidate_tables, 0);
    }

    #[test]
    fn table_filter_rule1_fires() {
        // Corpus with one strong table and many single-hit tables; k=1.
        let mut corpus = Corpus::new();
        let mut strong = TableBuilder::new("strong", ["a", "b"]);
        for i in 0..10 {
            strong = strong.row([format!("k{i}"), format!("v{i}")]);
        }
        corpus.add_table(strong.build());
        for t in 0..20 {
            corpus.add_table(
                TableBuilder::new(format!("weak{t}"), ["x", "y"])
                    .row(["k0", "v0"])
                    .build(),
            );
        }
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let mut query = TableBuilder::new("q", ["p", "q"]);
        for i in 0..10 {
            query = query.row([format!("k{i}"), format!("v{i}")]);
        }
        let query = query.build();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1)], 1);
        assert_eq!(r.top_k[0].joinability, 10);
        // The strong table (10 PL items) sorts first and sets j_k = 10; every
        // weak table has 1 PL item ≤ 10 → rule 1 stops the scan immediately.
        assert!(r.stats.stopped_early_rule1);
        assert_eq!(r.stats.tables_evaluated, 1);
    }

    #[test]
    fn disabling_table_filter_scans_everything() {
        let (corpus, index, hasher, query) = setup();
        let cfg = MateConfig {
            table_filtering: false,
            ..Default::default()
        };
        let r = MateDiscovery::with_config(&corpus, &index, &hasher, cfg).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            1,
        );
        assert!(!r.stats.stopped_early_rule1);
        assert_eq!(r.stats.tables_skipped_rule2, 0);
        assert_eq!(r.stats.tables_evaluated, r.stats.candidate_tables);
        assert_eq!(r.top_k[0].joinability, 5);
    }

    #[test]
    #[should_panic(expected = "duplicate key column")]
    fn duplicate_key_rejected() {
        let (corpus, index, hasher, query) = setup();
        MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &[ColId(0), ColId(0)], 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_key_rejected() {
        let (corpus, index, hasher, query) = setup();
        MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &[ColId(99)], 1);
    }

    #[test]
    #[should_panic(expected = "kind does not match")]
    fn mismatched_hasher_rejected() {
        let (corpus, index, _, _) = setup();
        let wrong = mate_hash::BloomFilterHasher::new(HashSize::B128, 3);
        MateDiscovery::new(&corpus, &index, &wrong);
    }

    // ------------------------------------------------------- parallelism --

    /// A corpus large enough that several workers stay busy, with planted
    /// joins of different strengths so the top-k ordering is non-trivial.
    fn wide_setup() -> (Corpus, Table) {
        let mut corpus = Corpus::new();
        for t in 0..60u32 {
            let mut tb = TableBuilder::new(format!("t{t}"), ["a", "b", "c"]);
            // Table t contains the first (t % 13) query key combos, plus
            // noise rows sharing individual values in wrong combinations.
            for i in 0..(t % 13) {
                tb = tb.row([format!("k{i}"), format!("v{i}"), format!("w{i}")]);
            }
            for i in 0..8u32 {
                tb = tb.row([
                    format!("k{}", (i + t) % 12),
                    format!("v{}", (i + t + 1) % 12),
                    format!("noise{t}-{i}"),
                ]);
            }
            corpus.add_table(tb.build());
        }
        let mut query = TableBuilder::new("q", ["x", "y", "z"]);
        for i in 0..12 {
            query = query.row([format!("k{i}"), format!("v{i}"), format!("w{i}")]);
        }
        (corpus, query.build())
    }

    #[test]
    fn parallel_discover_matches_sequential_exactly() {
        let (corpus, query) = wide_setup();
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let key = [ColId(0), ColId(1), ColId(2)];
        for k in [1, 3, 7, 100] {
            let seq = MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &key, k);
            for threads in [2, 4, 8] {
                let cfg = MateConfig {
                    query_threads: threads,
                    ..Default::default()
                };
                let par = MateDiscovery::with_config(&corpus, &index, &hasher, cfg)
                    .discover(&query, &key, k);
                assert_eq!(seq.top_k, par.top_k, "k={k} threads={threads}");
                assert_eq!(par.stats.query_threads, threads);
                assert_eq!(par.stats.per_worker.len(), threads);
                // Worker counters sum to the aggregates.
                let evaluated: usize = par
                    .stats
                    .per_worker
                    .iter()
                    .map(|w| w.tables_evaluated)
                    .sum();
                assert_eq!(evaluated, par.stats.tables_evaluated);
                // Nothing is double-counted or lost entirely.
                assert!(par.stats.tables_evaluated <= par.stats.candidate_tables);
                assert!(par.stats.rows_verified_joinable >= seq.stats.rows_verified_joinable);
            }
        }
    }

    #[test]
    fn parallel_respects_filter_toggles() {
        let (corpus, query) = wide_setup();
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let key = [ColId(0), ColId(1), ColId(2)];
        for (table_filtering, row_filtering) in [(false, true), (true, false), (false, false)] {
            let seq_cfg = MateConfig {
                table_filtering,
                row_filtering,
                ..Default::default()
            };
            let par_cfg = MateConfig {
                query_threads: 4,
                ..seq_cfg.clone()
            };
            let seq = MateDiscovery::with_config(&corpus, &index, &hasher, seq_cfg)
                .discover(&query, &key, 5);
            let par = MateDiscovery::with_config(&corpus, &index, &hasher, par_cfg)
                .discover(&query, &key, 5);
            assert_eq!(seq.top_k, par.top_k);
            if !table_filtering {
                // With pruning off every candidate is fully evaluated, so
                // even the aggregate counters agree exactly.
                assert_eq!(par.stats.tables_evaluated, par.stats.candidate_tables);
                assert_eq!(seq.stats.rows_passed_filter, par.stats.rows_passed_filter);
            }
        }
    }

    #[test]
    fn parallel_handles_edge_shapes() {
        let (corpus, index, hasher, query) = setup();
        let cfg = MateConfig {
            query_threads: 8, // more workers than candidates
            ..Default::default()
        };
        let r = MateDiscovery::with_config(&corpus, &index, &hasher, cfg).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            1,
        );
        assert_eq!(r.top_k[0].joinability, 5);

        // No hits at all.
        let nohit = TableBuilder::new("d", ["a", "b"])
            .row(["zzzznope", "yyyynope"])
            .build();
        let cfg = MateConfig {
            query_threads: 4,
            ..Default::default()
        };
        let r = MateDiscovery::with_config(&corpus, &index, &hasher, cfg).discover(
            &nohit,
            &[ColId(0), ColId(1)],
            5,
        );
        assert!(r.top_k.is_empty());
    }
}
