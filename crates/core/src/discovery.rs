//! The MATE discovery engine — Algorithm 1 of the paper.

use crate::config::MateConfig;
use crate::init_column::select_initial_column;
use crate::joinability::{verify_table_joinability, RowPair};
use crate::query_keys::QueryKeyMap;
use crate::stats::DiscoveryStats;
pub use crate::topk::TableResult;
use crate::topk::TopK;
use mate_hash::fx::FxHashMap;
use mate_hash::{covers, RowHasher};
use mate_index::{InvertedIndex, PostingEntry};
use mate_table::{ColId, Corpus, Table, TableId};
use std::time::Instant;

/// Output of a discovery run: the top-k joinable tables plus instrumentation.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// Top-k tables sorted by joinability descending.
    pub top_k: Vec<TableResult>,
    /// Counters and timing for this run.
    pub stats: DiscoveryStats,
}

/// The discovery engine. Borrows the corpus (for verification), the index
/// (for posting lists and super keys), and the hash function that built the
/// index (for query-side super keys).
pub struct MateDiscovery<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    hasher: &'a dyn RowHasher,
    config: MateConfig,
}

impl<'a> MateDiscovery<'a> {
    /// Creates an engine with the default configuration.
    ///
    /// # Panics
    /// Panics if `hasher` does not match the index (size or kind).
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, hasher: &'a dyn RowHasher) -> Self {
        Self::with_config(corpus, index, hasher, MateConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        hasher: &'a dyn RowHasher,
        config: MateConfig,
    ) -> Self {
        assert_eq!(
            hasher.hash_size(),
            index.hash_size(),
            "hasher size does not match index"
        );
        assert_eq!(
            hasher.name(),
            index.hasher_name(),
            "hasher kind does not match index"
        );
        MateDiscovery {
            corpus,
            index,
            hasher,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MateConfig {
        &self.config
    }

    /// Finds the top-`k` tables joinable with `query` on the composite key
    /// `q_cols` (Algorithm 1).
    ///
    /// # Panics
    /// Panics if `q_cols` is empty, contains duplicates, or indexes columns
    /// that do not exist in `query`.
    pub fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        let start = Instant::now();
        validate_key(query, q_cols);
        let mut stats = DiscoveryStats::default();

        // ---- Initialization (lines 3-6) --------------------------------
        let initial = select_initial_column(query, q_cols, self.config.heuristic, self.index);
        stats.initial_column = Some(initial);

        let key_map = QueryKeyMap::build(query, q_cols, initial, self.hasher);

        // Fetch PLs for all distinct initial-column values and group by table.
        let mut by_table: FxHashMap<u32, Vec<(u32, PostingEntry)>> = FxHashMap::default();
        let mut values: Vec<&str> = Vec::new();
        {
            let mut seen: FxHashMap<&str, u32> = FxHashMap::default();
            for v in &query.column(initial).values {
                if v.is_empty() || seen.contains_key(v.as_str()) {
                    continue;
                }
                // Only values that reach at least one usable query row matter.
                if key_map.rows_for(v).is_empty() {
                    continue;
                }
                let vid = values.len() as u32;
                seen.insert(v, vid);
                values.push(v);
                if let Some(pl) = self.index.posting_list(v) {
                    stats.pl_lists_fetched += 1;
                    stats.pl_items_fetched += pl.len();
                    for e in pl {
                        by_table.entry(e.table.0).or_default().push((vid, *e));
                    }
                }
            }
        }

        // Sort candidate tables by PL-item count descending (line 5); ties by
        // table id for determinism.
        let mut candidates: Vec<(u32, Vec<(u32, PostingEntry)>)> = by_table.into_iter().collect();
        candidates.sort_unstable_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        stats.candidate_tables = candidates.len();

        let mut topk = TopK::new(k);

        // ---- Per-table loop (line 7) ------------------------------------
        'tables: for (tid_raw, table_pls) in candidates {
            let tid = TableId(tid_raw);
            let l_t = table_pls.len();

            // Table filtering rule 1 (line 9): tables are sorted, so once the
            // PL count cannot beat j_k nothing later can either.
            if self.config.table_filtering && topk.is_full() && l_t as u64 <= topk.min_joinability()
            {
                stats.stopped_early_rule1 = true;
                break 'tables;
            }

            stats.tables_evaluated += 1;
            let mut r_checked = 0usize;
            let mut r_match = 0usize;
            let mut pairs: Vec<RowPair> = Vec::new();
            let mut seen_pairs: mate_hash::fx::FxHashSet<(u32, u32)> =
                mate_hash::fx::FxHashSet::default();

            // ---- Row filtering (lines 13-20) ----------------------------
            for (vid, entry) in table_pls {
                // Table filtering rule 2 (line 14): even if every remaining
                // row matched, the table cannot beat j_k.
                if self.config.table_filtering
                    && topk.is_full()
                    && (l_t - r_checked + r_match) as u64 <= topk.min_joinability()
                {
                    stats.tables_skipped_rule2 += 1;
                    continue 'tables;
                }
                r_checked += 1;

                let value = values[vid as usize];
                let superkey = self.index.superkey(entry.table, entry.row);
                let mut entry_matched = false;
                for qk in key_map.rows_for(value) {
                    let pair_key = (entry.row.0, qk.row.0);
                    if seen_pairs.contains(&pair_key) {
                        // The same (row, query row) pair can surface through
                        // multiple PL items when the value occurs in several
                        // columns of the row.
                        entry_matched = true;
                        continue;
                    }
                    let passes = if self.config.row_filtering {
                        stats.rows_filter_checked += 1;
                        covers(superkey, qk.superkey.words())
                    } else {
                        true
                    };
                    if passes {
                        seen_pairs.insert(pair_key);
                        pairs.push(RowPair {
                            candidate_row: entry.row,
                            query_row: qk.row,
                            tuple_id: qk.tuple_id,
                        });
                        entry_matched = true;
                    }
                }
                if entry_matched {
                    r_match += 1;
                }
            }
            stats.rows_passed_filter += pairs.len();

            // ---- calculateJ (lines 21-22) --------------------------------
            let candidate = self.corpus.table(tid);
            let outcome = verify_table_joinability(
                candidate,
                query,
                q_cols,
                &pairs,
                self.config.max_mappings_per_row,
            );
            stats.rows_verified_joinable += outcome.true_positive_pairs;
            stats.false_positive_rows += outcome.pairs_checked - outcome.true_positive_pairs;
            stats.mappings_capped |= outcome.mappings_capped;
            topk.update(tid, outcome.joinability);
        }

        stats.elapsed = start.elapsed();
        DiscoveryResult {
            top_k: topk.into_sorted(),
            stats,
        }
    }
}

fn validate_key(query: &Table, q_cols: &[ColId]) {
    assert!(
        !q_cols.is_empty(),
        "composite key must have at least one column"
    );
    let mut seen = std::collections::HashSet::new();
    for &c in q_cols {
        assert!(c.index() < query.num_cols(), "key column {c} out of bounds");
        assert!(seen.insert(c), "duplicate key column {c}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    /// Figure 1 of the paper plus distractor tables.
    fn setup() -> (Corpus, InvertedIndex, Xash, Table) {
        let mut corpus = Corpus::new();
        // T0: the joinable table of the running example.
        corpus.add_table(
            TableBuilder::new("T1", ["Vorname", "Nachname", "Land", "Besetzung"])
                .row(["Helmut", "Newton", "Germany", "Photographer"])
                .row(["Muhammad", "Lee", "US", "Dancer"])
                .row(["Ansel", "Adams", "UK", "Dancer"])
                .row(["Ansel", "Adams", "US", "Photographer"])
                .row(["Muhammad", "Ali", "US", "Boxer"])
                .row(["Muhammad", "Lee", "Germany", "Birder"])
                .row(["Gretchen", "Lee", "Germany", "Artist"])
                .row(["Adam", "Sandler", "US", "Actor"])
                .build(),
        );
        // T1: shares individual values but only 2 full key combos.
        corpus.add_table(
            TableBuilder::new("T2", ["first", "last", "country"])
                .row(["Muhammad", "Lee", "US"])
                .row(["Helmut", "Newton", "Germany"])
                .row(["Muhammad", "Smith", "US"])
                .build(),
        );
        // T2: unary hits only (classic FP table for single-column systems).
        corpus.add_table(
            TableBuilder::new("T3", ["name", "city"])
                .row(["Muhammad", "Cairo"])
                .row(["Ansel", "SF"])
                .row(["Helmut", "Berlin"])
                .build(),
        );
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let query = TableBuilder::new("d", ["F. Name", "L. Name", "Country", "Salary"])
            .row(["Muhammad", "Lee", "US", "60k"])
            .row(["Ansel", "Adams", "UK", "50k"])
            .row(["Ansel", "Adams", "US", "400k"])
            .row(["Muhammad", "Lee", "Germany", "90k"])
            .row(["Helmut", "Newton", "Germany", "300k"])
            .build();
        (corpus, index, hasher, query)
    }

    #[test]
    fn running_example_top1() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 1);
        assert_eq!(r.top_k.len(), 1);
        assert_eq!(r.top_k[0].table, TableId(0));
        assert_eq!(r.top_k[0].joinability, 5);
    }

    #[test]
    fn top2_includes_partial_table() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 2);
        assert_eq!(r.top_k.len(), 2);
        assert_eq!(r.top_k[0].table, TableId(0));
        assert_eq!(r.top_k[0].joinability, 5);
        assert_eq!(r.top_k[1].table, TableId(1));
        // T2 contains (Muhammad,Lee,US) and (Helmut,Newton,Germany).
        assert_eq!(r.top_k[1].joinability, 2);
    }

    #[test]
    fn unary_only_table_not_joinable() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 3);
        // T3 never contains a full key combo → j = 0 → excluded entirely.
        assert_eq!(r.top_k.len(), 2);
        assert!(r.top_k.iter().all(|t| t.table != TableId(2)));
    }

    #[test]
    fn no_false_negatives_vs_unfiltered() {
        // With row filtering on and off the reported top-k must be identical
        // (the super key never drops a joinable row).
        let (corpus, index, hasher, query) = setup();
        let on = MateDiscovery::new(&corpus, &index, &hasher).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            3,
        );
        let off_cfg = MateConfig {
            row_filtering: false,
            ..Default::default()
        };
        let off = MateDiscovery::with_config(&corpus, &index, &hasher, off_cfg).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            3,
        );
        assert_eq!(on.top_k, off.top_k);
        // And the filter never passes more rows than the unfiltered run.
        assert!(on.stats.rows_passed_filter <= off.stats.rows_passed_filter);
    }

    #[test]
    fn stats_are_populated() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 1);
        let s = &r.stats;
        assert!(s.initial_column.is_some());
        assert!(s.pl_items_fetched > 0);
        assert!(s.candidate_tables >= 2);
        assert!(s.tables_evaluated >= 1);
        assert!(s.rows_filter_checked > 0);
        assert!(s.rows_verified_joinable >= 5);
        assert!(s.precision() > 0.0);
    }

    #[test]
    fn single_column_key_works() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(2)], 1);
        // Countries: us, uk, germany — T1 contains all three → j = 3.
        assert_eq!(r.top_k[0].joinability, 3);
    }

    #[test]
    fn k_larger_than_matches() {
        let (corpus, index, hasher, query) = setup();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1), ColId(2)], 50);
        assert_eq!(r.top_k.len(), 2);
    }

    #[test]
    fn query_with_no_hits() {
        let (corpus, index, hasher, _) = setup();
        let query = TableBuilder::new("d", ["a", "b"])
            .row(["zzzznope", "yyyynope"])
            .build();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1)], 5);
        assert!(r.top_k.is_empty());
        assert_eq!(r.stats.candidate_tables, 0);
    }

    #[test]
    fn table_filter_rule1_fires() {
        // Corpus with one strong table and many single-hit tables; k=1.
        let mut corpus = Corpus::new();
        let mut strong = TableBuilder::new("strong", ["a", "b"]);
        for i in 0..10 {
            strong = strong.row([format!("k{i}"), format!("v{i}")]);
        }
        corpus.add_table(strong.build());
        for t in 0..20 {
            corpus.add_table(
                TableBuilder::new(format!("weak{t}"), ["x", "y"])
                    .row(["k0", "v0"])
                    .build(),
            );
        }
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let mut query = TableBuilder::new("q", ["p", "q"]);
        for i in 0..10 {
            query = query.row([format!("k{i}"), format!("v{i}")]);
        }
        let query = query.build();
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let r = mate.discover(&query, &[ColId(0), ColId(1)], 1);
        assert_eq!(r.top_k[0].joinability, 10);
        // The strong table (10 PL items) sorts first and sets j_k = 10; every
        // weak table has 1 PL item ≤ 10 → rule 1 stops the scan immediately.
        assert!(r.stats.stopped_early_rule1);
        assert_eq!(r.stats.tables_evaluated, 1);
    }

    #[test]
    fn disabling_table_filter_scans_everything() {
        let (corpus, index, hasher, query) = setup();
        let cfg = MateConfig {
            table_filtering: false,
            ..Default::default()
        };
        let r = MateDiscovery::with_config(&corpus, &index, &hasher, cfg).discover(
            &query,
            &[ColId(0), ColId(1), ColId(2)],
            1,
        );
        assert!(!r.stats.stopped_early_rule1);
        assert_eq!(r.stats.tables_skipped_rule2, 0);
        assert_eq!(r.stats.tables_evaluated, r.stats.candidate_tables);
        assert_eq!(r.top_k[0].joinability, 5);
    }

    #[test]
    #[should_panic(expected = "duplicate key column")]
    fn duplicate_key_rejected() {
        let (corpus, index, hasher, query) = setup();
        MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &[ColId(0), ColId(0)], 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_key_rejected() {
        let (corpus, index, hasher, query) = setup();
        MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &[ColId(99)], 1);
    }

    #[test]
    #[should_panic(expected = "kind does not match")]
    fn mismatched_hasher_rejected() {
        let (corpus, index, _, _) = setup();
        let wrong = mate_hash::BloomFilterHasher::new(HashSize::B128, 3);
        MateDiscovery::new(&corpus, &index, &wrong);
    }
}
