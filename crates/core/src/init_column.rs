//! Initial query-column selection (§6.1).
//!
//! MATE fetches candidate tables through a *single* key column; picking the
//! column that matches the fewest posting-list items dominates the fetch
//! cost. The true optimum requires the index (the oracle baselines); MATE's
//! heuristic needs only the query table: minimum cardinality.

use crate::config::InitColumnHeuristic;
use mate_index::PostingSource;
use mate_table::{ColId, ColumnStats, Table};

/// Chooses the initial column among the key columns `q_cols` of `query`.
///
/// The oracle strategies consult the posting source for actual posting-list
/// item counts (list lengths come from the header alone — in cold mode no
/// payload is decoded); the heuristics use only query-table statistics.
///
/// # Panics
/// Panics if `q_cols` is empty or `Fixed(i)` is out of bounds.
pub fn select_initial_column(
    query: &Table,
    q_cols: &[ColId],
    heuristic: InitColumnHeuristic,
    index: &dyn PostingSource,
) -> ColId {
    assert!(
        !q_cols.is_empty(),
        "composite key must have at least one column"
    );
    match heuristic {
        InitColumnHeuristic::MinCardinality => *q_cols
            .iter()
            .min_by_key(|&&c| {
                let s = ColumnStats::compute(c, query.column(c));
                (s.cardinality, c.0)
            })
            // panic-exempt: min over `q_cols`, asserted non-empty above.
            .unwrap(),
        // panic-exempt: min over `q_cols`, asserted non-empty above.
        InitColumnHeuristic::ColumnOrder => *q_cols.iter().min_by_key(|c| c.0).unwrap(),
        InitColumnHeuristic::LongestString => *q_cols
            .iter()
            .max_by_key(|&&c| {
                let s = ColumnStats::compute(c, query.column(c));
                (s.max_value_len, std::cmp::Reverse(c.0))
            })
            // panic-exempt: max over `q_cols`, asserted non-empty above.
            .unwrap(),
        InitColumnHeuristic::WorstOracle => *q_cols
            .iter()
            .max_by_key(|&&c| (pl_items_for_column(query, c, index), std::cmp::Reverse(c.0)))
            // panic-exempt: max over `q_cols`, asserted non-empty above.
            .unwrap(),
        InitColumnHeuristic::BestOracle => *q_cols
            .iter()
            .min_by_key(|&&c| (pl_items_for_column(query, c, index), c.0))
            // panic-exempt: min over `q_cols`, asserted non-empty above.
            .unwrap(),
        InitColumnHeuristic::Fixed(i) => {
            assert!(
                i < q_cols.len(),
                "Fixed({i}) out of bounds for |Q| = {}",
                q_cols.len()
            );
            q_cols[i]
        }
    }
}

/// Total posting-list items the distinct values of `col` would fetch.
pub fn pl_items_for_column(query: &Table, col: ColId, index: &dyn PostingSource) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut scratch = mate_index::ProbeScratch::new();
    let mut total = 0usize;
    for v in &query.column(col).values {
        if v.is_empty() || !seen.insert(v.as_str()) {
            continue;
        }
        if let Some(list) = index.find_list(v, &mut scratch) {
            total += list.len as usize;
        }
    }
    total
}

/// Number of distinct posting lists (values with hits) `col` would fetch —
/// the metric reported in §7.5.4.
pub fn pl_lists_for_column(query: &Table, col: ColId, index: &dyn PostingSource) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut scratch = mate_index::ProbeScratch::new();
    let mut total = 0usize;
    for v in &query.column(col).values {
        if v.is_empty() || !seen.insert(v.as_str()) {
            continue;
        }
        if index.find_list(v, &mut scratch).is_some() {
            total += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::{IndexBuilder, InvertedIndex};
    use mate_table::{Corpus, TableBuilder};

    /// Corpus where "common" appears everywhere and "rare" once.
    fn setup() -> (Corpus, InvertedIndex, Table) {
        let mut c = Corpus::new();
        for i in 0..5 {
            c.add_table(
                TableBuilder::new(format!("t{i}"), ["x", "y"])
                    .row(["common", &format!("u{i}")])
                    .row(["common", "shared"])
                    .build(),
            );
        }
        let idx = IndexBuilder::new(Xash::new(HashSize::B128)).build(&c);
        // Query: col0 has 1 distinct value ("common", many hits);
        // col1 has 2 distinct values with few hits; col2 long strings.
        let q = TableBuilder::new("q", ["a", "b", "c"])
            .row(["common", "u1", "a very long string value"])
            .row(["common", "shared", "tiny"])
            .build();
        (c, idx, q)
    }

    #[test]
    fn min_cardinality_picks_fewest_distinct() {
        let (_, idx, q) = setup();
        let cols = [ColId(0), ColId(1)];
        let c = select_initial_column(&q, &cols, InitColumnHeuristic::MinCardinality, idx.store());
        assert_eq!(c, ColId(0)); // 1 distinct < 2 distinct
    }

    #[test]
    fn column_order_picks_first() {
        let (_, idx, q) = setup();
        let c = select_initial_column(
            &q,
            &[ColId(2), ColId(1)],
            InitColumnHeuristic::ColumnOrder,
            idx.store(),
        );
        assert_eq!(c, ColId(1));
    }

    #[test]
    fn longest_string_picks_col2() {
        let (_, idx, q) = setup();
        let c = select_initial_column(
            &q,
            &[ColId(0), ColId(1), ColId(2)],
            InitColumnHeuristic::LongestString,
            idx.store(),
        );
        assert_eq!(c, ColId(2));
    }

    #[test]
    fn oracles_bracket_the_heuristic() {
        let (_, idx, q) = setup();
        let cols = [ColId(0), ColId(1)];
        let best = select_initial_column(&q, &cols, InitColumnHeuristic::BestOracle, idx.store());
        let worst = select_initial_column(&q, &cols, InitColumnHeuristic::WorstOracle, idx.store());
        // col0 fetches 10 items ("common" in 5 tables × 2 rows); col1 fetches
        // 1 ("u1") + 5 ("shared") = 6.
        assert_eq!(pl_items_for_column(&q, ColId(0), idx.store()), 10);
        assert_eq!(pl_items_for_column(&q, ColId(1), idx.store()), 6);
        assert_eq!(best, ColId(1));
        assert_eq!(worst, ColId(0));
    }

    #[test]
    fn pl_lists_counts_distinct_hit_values() {
        let (_, idx, q) = setup();
        assert_eq!(pl_lists_for_column(&q, ColId(0), idx.store()), 1);
        assert_eq!(pl_lists_for_column(&q, ColId(1), idx.store()), 2);
        assert_eq!(pl_lists_for_column(&q, ColId(2), idx.store()), 0);
    }

    #[test]
    fn fixed_heuristic() {
        let (_, idx, q) = setup();
        let c = select_initial_column(
            &q,
            &[ColId(2), ColId(0)],
            InitColumnHeuristic::Fixed(1),
            idx.store(),
        );
        assert_eq!(c, ColId(0));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_key_rejected() {
        let (_, idx, q) = setup();
        select_initial_column(&q, &[], InitColumnHeuristic::MinCardinality, idx.store());
    }
}
