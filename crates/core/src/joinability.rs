//! Exact joinability verification (the `calculateJ` step of Algorithm 1).
//!
//! After filtering, each surviving `(candidate row, query row)` pair is
//! verified against the actual cell values, and the joinability
//! `j = max over injective column mappings |π_Q(d) ∩ π_Y'(T)|` (Eq. 2) is
//! computed. The paper stresses that the candidate side has no known key
//! columns: a key value may appear in *any* column, so verification
//! enumerates injective mappings `Q → columns(T)` consistent with the
//! observed values (the factorial space of Eq. 3, bounded here by
//! `max_mappings`) and counts, per mapping, the distinct query key tuples it
//! realizes. The best mapping wins.

use mate_hash::fx::{FxHashMap, FxHashSet};
use mate_table::{ColId, RowId, Table};

/// One filtered row pair to verify: candidate-table row, query row, and the
/// query row's key-tuple id (rows with equal tuples share ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPair {
    /// Row in the candidate table.
    pub candidate_row: RowId,
    /// Row in the query table.
    pub query_row: RowId,
    /// Key-tuple id of the query row (see `query_keys`).
    pub tuple_id: u32,
}

/// Result of verifying one candidate table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Joinability `j` of the table (Eq. 2).
    pub joinability: u64,
    /// Pairs in which the composite key was actually present (true
    /// positives of the row filter).
    pub true_positive_pairs: usize,
    /// Pairs checked in total.
    pub pairs_checked: usize,
    /// True if the mapping enumeration hit `max_mappings` for some row and
    /// the joinability is therefore a lower bound.
    pub mappings_capped: bool,
}

/// Verifies filtered row pairs against actual cell values and computes the
/// best-mapping joinability.
pub fn verify_table_joinability(
    candidate: &Table,
    query: &Table,
    q_cols: &[ColId],
    pairs: &[RowPair],
    max_mappings: usize,
) -> VerifyOutcome {
    let mut per_mapping: FxHashMap<Vec<u16>, FxHashSet<u32>> = FxHashMap::default();
    let mut tp = 0usize;
    let mut capped = false;

    let mut key: Vec<&str> = Vec::with_capacity(q_cols.len());
    for pair in pairs {
        key.clear();
        key.extend(q_cols.iter().map(|&q| query.cell(pair.query_row, q)));

        // Candidate columns per key position.
        let ncols = candidate.num_cols();
        let mut options: Vec<Vec<u16>> = vec![Vec::new(); q_cols.len()];
        for c in 0..ncols {
            let v = candidate.cell(pair.candidate_row, ColId::from(c));
            if v.is_empty() {
                continue;
            }
            for (i, k) in key.iter().enumerate() {
                if v == *k {
                    options[i].push(c as u16);
                }
            }
        }
        if options.iter().any(Vec::is_empty) {
            continue; // false positive: some key value missing from the row
        }

        let mappings = enumerate_injective(&options, max_mappings);
        if mappings.is_empty() {
            continue; // values present but no injective assignment (e.g. key
                      // (x, x) with only one column holding x)
        }
        if mappings.len() >= max_mappings {
            capped = true;
        }
        tp += 1;
        for m in mappings {
            per_mapping.entry(m).or_default().insert(pair.tuple_id);
        }
    }

    let joinability = per_mapping
        .values()
        .map(|s| s.len() as u64)
        .max()
        .unwrap_or(0);
    VerifyOutcome {
        joinability,
        true_positive_pairs: tp,
        pairs_checked: pairs.len(),
        mappings_capped: capped,
    }
}

/// Enumerates injective assignments choosing one column from `options[i]`
/// per position, up to `max` assignments.
///
/// Positions are explored in order of ascending branching factor; results
/// are reported in the original position order.
fn enumerate_injective(options: &[Vec<u16>], max: usize) -> Vec<Vec<u16>> {
    let m = options.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| options[i].len());

    let mut results = Vec::new();
    let mut assignment = vec![u16::MAX; m];
    let mut used: FxHashSet<u16> = FxHashSet::default();

    fn backtrack(
        depth: usize,
        order: &[usize],
        options: &[Vec<u16>],
        assignment: &mut Vec<u16>,
        used: &mut FxHashSet<u16>,
        results: &mut Vec<Vec<u16>>,
        max: usize,
    ) {
        if results.len() >= max {
            return;
        }
        if depth == order.len() {
            results.push(assignment.clone());
            return;
        }
        let pos = order[depth];
        for &col in &options[pos] {
            if used.insert(col) {
                assignment[pos] = col;
                backtrack(depth + 1, order, options, assignment, used, results, max);
                used.remove(&col);
                assignment[pos] = u16::MAX;
            }
        }
    }

    backtrack(
        0,
        &order,
        options,
        &mut assignment,
        &mut used,
        &mut results,
        max,
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_table::TableBuilder;

    fn figure1_tables() -> (Table, Table) {
        let candidate = TableBuilder::new("T1", ["Vorname", "Nachname", "Land", "Besetzung"])
            .row(["Helmut", "Newton", "Germany", "Photographer"])
            .row(["Muhammad", "Lee", "US", "Dancer"])
            .row(["Ansel", "Adams", "UK", "Dancer"])
            .row(["Ansel", "Adams", "US", "Photographer"])
            .row(["Muhammad", "Ali", "US", "Boxer"])
            .row(["Muhammad", "Lee", "Germany", "Birder"])
            .row(["Gretchen", "Lee", "Germany", "Artist"])
            .row(["Adam", "Sandler", "US", "Actor"])
            .build();
        let query = TableBuilder::new("d", ["F", "L", "C", "Salary"])
            .row(["Muhammad", "Lee", "US", "60k"])
            .row(["Ansel", "Adams", "UK", "50k"])
            .row(["Ansel", "Adams", "US", "400k"])
            .row(["Muhammad", "Lee", "Germany", "90k"])
            .row(["Helmut", "Newton", "Germany", "300k"])
            .build();
        (candidate, query)
    }

    fn all_pairs(candidate: &Table, query: &Table) -> Vec<RowPair> {
        let mut pairs = Vec::new();
        for qr in 0..query.num_rows() {
            for cr in 0..candidate.num_rows() {
                pairs.push(RowPair {
                    candidate_row: RowId::from(cr),
                    query_row: RowId::from(qr),
                    tuple_id: qr as u32,
                });
            }
        }
        pairs
    }

    #[test]
    fn running_example_joinability_is_5() {
        // §2: the best mapping (F→Vorname, L→Nachname, C→Land) yields j = 5.
        let (cand, query) = figure1_tables();
        let q_cols = [ColId(0), ColId(1), ColId(2)];
        let out =
            verify_table_joinability(&cand, &query, &q_cols, &all_pairs(&cand, &query), 10_000);
        assert_eq!(out.joinability, 5);
        assert!(!out.mappings_capped);
    }

    #[test]
    fn swapped_mapping_would_be_zero() {
        // Mapping F→Nachname, L→Vorname yields 0 — verification must find the
        // max, not the column-order mapping.
        let cand = TableBuilder::new("T", ["last", "first"])
            .row(["lee", "muhammad"])
            .build();
        let query = TableBuilder::new("d", ["f", "l"])
            .row(["muhammad", "lee"])
            .build();
        let out = verify_table_joinability(
            &cand,
            &query,
            &[ColId(0), ColId(1)],
            &[RowPair {
                candidate_row: RowId(0),
                query_row: RowId(0),
                tuple_id: 0,
            }],
            100,
        );
        assert_eq!(out.joinability, 1);
        assert_eq!(out.true_positive_pairs, 1);
    }

    #[test]
    fn partial_match_is_false_positive() {
        let cand = TableBuilder::new("T", ["a", "b"])
            .row(["muhammad", "ali"])
            .build();
        let query = TableBuilder::new("d", ["f", "l"])
            .row(["muhammad", "lee"])
            .build();
        let out = verify_table_joinability(
            &cand,
            &query,
            &[ColId(0), ColId(1)],
            &[RowPair {
                candidate_row: RowId(0),
                query_row: RowId(0),
                tuple_id: 0,
            }],
            100,
        );
        assert_eq!(out.joinability, 0);
        assert_eq!(out.true_positive_pairs, 0);
        assert_eq!(out.pairs_checked, 1);
    }

    #[test]
    fn injectivity_enforced_for_repeated_key_values() {
        // Key (x, x): candidate with only one column equal to x cannot match.
        let cand1 = TableBuilder::new("T", ["a", "b"]).row(["x", "y"]).build();
        let query = TableBuilder::new("d", ["p", "q"]).row(["x", "x"]).build();
        let pair = [RowPair {
            candidate_row: RowId(0),
            query_row: RowId(0),
            tuple_id: 0,
        }];
        let out = verify_table_joinability(&cand1, &query, &[ColId(0), ColId(1)], &pair, 100);
        assert_eq!(out.joinability, 0);

        // Two columns holding x do match.
        let cand2 = TableBuilder::new("T", ["a", "b"]).row(["x", "x"]).build();
        let out = verify_table_joinability(&cand2, &query, &[ColId(0), ColId(1)], &pair, 100);
        assert_eq!(out.joinability, 1);
    }

    #[test]
    fn mapping_must_be_consistent_across_rows() {
        // Each row matches under a *different* mapping; no single mapping
        // covers both tuples, so j = 1, not 2.
        let cand = TableBuilder::new("T", ["a", "b"])
            .row(["k1", "k2"]) // matches (p→a, q→b)
            .row(["m2", "m1"]) // matches (p→b, q→a)
            .build();
        let query = TableBuilder::new("d", ["p", "q"])
            .row(["k1", "k2"])
            .row(["m1", "m2"])
            .build();
        let out = verify_table_joinability(
            &cand,
            &query,
            &[ColId(0), ColId(1)],
            &all_pairs(&cand, &query),
            100,
        );
        assert_eq!(out.joinability, 1);
        assert_eq!(out.true_positive_pairs, 2);
    }

    #[test]
    fn duplicate_query_tuples_count_once() {
        let cand = TableBuilder::new("T", ["a", "b"]).row(["k1", "k2"]).build();
        let query = TableBuilder::new("d", ["p", "q"])
            .row(["k1", "k2"])
            .row(["k1", "k2"])
            .build();
        // Both query rows share tuple_id 0.
        let pairs = [
            RowPair {
                candidate_row: RowId(0),
                query_row: RowId(0),
                tuple_id: 0,
            },
            RowPair {
                candidate_row: RowId(0),
                query_row: RowId(1),
                tuple_id: 0,
            },
        ];
        let out = verify_table_joinability(&cand, &query, &[ColId(0), ColId(1)], &pairs, 100);
        assert_eq!(out.joinability, 1);
        assert_eq!(out.true_positive_pairs, 2);
    }

    #[test]
    fn empty_pairs_zero_joinability() {
        let (cand, query) = figure1_tables();
        let out = verify_table_joinability(&cand, &query, &[ColId(0)], &[], 100);
        assert_eq!(out.joinability, 0);
        assert_eq!(out.pairs_checked, 0);
    }

    #[test]
    fn empty_candidate_cells_ignored() {
        let cand = TableBuilder::new("T", ["a", "b"]).row(["", "k1"]).build();
        let query = TableBuilder::new("d", ["p"]).row(["k1"]).build();
        let out = verify_table_joinability(
            &cand,
            &query,
            &[ColId(0)],
            &[RowPair {
                candidate_row: RowId(0),
                query_row: RowId(0),
                tuple_id: 0,
            }],
            100,
        );
        assert_eq!(out.joinability, 1);
    }

    #[test]
    fn mapping_cap_reported() {
        // A row where every key value matches every column explodes
        // combinatorially; the cap must kick in and be reported.
        let headers: Vec<String> = (0..8).map(|i| format!("c{i}")).collect();
        let row: Vec<&str> = vec!["x"; 8];
        let cand = TableBuilder::new("T", headers.clone())
            .row(row.clone())
            .build();
        let query = TableBuilder::new("d", ["a", "b", "c", "d", "e", "f", "g", "h"])
            .row(vec!["x"; 8])
            .build();
        let q_cols: Vec<ColId> = (0..8u32).map(ColId).collect();
        let out = verify_table_joinability(
            &cand,
            &query,
            &q_cols,
            &[RowPair {
                candidate_row: RowId(0),
                query_row: RowId(0),
                tuple_id: 0,
            }],
            100, // << 8! = 40320
        );
        assert!(out.mappings_capped);
        assert_eq!(out.joinability, 1);
    }

    #[test]
    fn enumerate_injective_basics() {
        // options: pos0 ∈ {0,1}, pos1 ∈ {1} → only (0,1) is injective.
        let m = enumerate_injective(&[vec![0, 1], vec![1]], 100);
        assert_eq!(m, vec![vec![0, 1]]);
        // no options → no assignment
        assert!(enumerate_injective(&[vec![], vec![1]], 100).is_empty());
        // zero positions → one empty assignment
        assert_eq!(enumerate_injective(&[], 100), vec![Vec::<u16>::new()]);
    }
}
