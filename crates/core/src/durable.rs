//! A durable, concurrently-readable lake: corpus + index + WAL.
//!
//! [`DurableLake`] owns a corpus and its index behind a `parking_lot`
//! read-write lock: any number of discovery queries proceed concurrently
//! while edits take the write lock, append to the WAL first (write-ahead
//! rule), then apply in memory. [`DurableLake::open`] recovers state as
//! checkpoint segments + WAL replay; [`DurableLake::checkpoint`] folds the
//! log into fresh segments and truncates it.
//!
//! This is the *legacy single-segment* lake, kept for the monolithic
//! checkpoint workflow; the multi-segment [`mate_index::engine`] is the
//! fault-injectable path. Its direct `std::fs` calls are `// vfs-exempt:`
//! it predates the [`mate_storage::Vfs`] seam and is not part of the
//! engine's failure model.

use crate::{DiscoveryResult, MateDiscovery};
use mate_hash::{HashSize, Xash};
use mate_index::persist;
use mate_index::wal::{frame_record, parse_log, WalRecord};
use mate_index::{IndexBuilder, IndexUpdater, InvertedIndex};
use mate_storage::StorageError;
use mate_table::{ColId, Corpus, Table, TableId};
use parking_lot::RwLock;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File names inside a lake directory.
const CORPUS_FILE: &str = "corpus.seg";
const INDEX_FILE: &str = "index.seg";
const WAL_FILE: &str = "wal.log";

struct State {
    corpus: Corpus,
    index: InvertedIndex,
}

/// A disk-backed lake with WAL durability and concurrent reads.
pub struct DurableLake {
    dir: PathBuf,
    hasher: Xash,
    state: RwLock<State>,
    wal: parking_lot::Mutex<std::fs::File>,
}

impl DurableLake {
    /// Creates a new empty lake in `dir` (created if missing).
    pub fn create(dir: impl AsRef<Path>, size: HashSize) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        // vfs-exempt: legacy single-segment lake (see module docs).
        std::fs::create_dir_all(&dir)?;
        let corpus = Corpus::new();
        let hasher = Xash::new(size);
        let index = IndexBuilder::new(hasher).build(&corpus);
        persist::save_corpus(&corpus, dir.join(CORPUS_FILE))?;
        persist::save_index(&index, dir.join(INDEX_FILE))?;
        // vfs-exempt: legacy single-segment lake (see module docs).
        let wal = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(dir.join(WAL_FILE))?;
        Ok(DurableLake {
            dir,
            hasher,
            state: RwLock::new(State { corpus, index }),
            wal: parking_lot::Mutex::new(wal),
        })
    }

    /// Opens an existing lake: loads the checkpoint segments and replays the
    /// WAL tail. Torn or corrupt trailing records are discarded (the file is
    /// truncated to the last valid record).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        let mut corpus = persist::load_corpus(dir.join(CORPUS_FILE))?;
        let mut index = persist::load_index(dir.join(INDEX_FILE))?;
        let size = index.hash_size();
        let hasher = Xash::new(size);

        let wal_path = dir.join(WAL_FILE);
        let log = std::fs::read(&wal_path).unwrap_or_default();
        let (records, valid_len) = parse_log(&log);
        if !records.is_empty() {
            let mut updater = IndexUpdater::new(&mut corpus, &mut index, hasher);
            for rec in &records {
                rec.apply(&mut updater);
            }
        }
        if valid_len < log.len() {
            // Trim the torn tail *in place*: `set_len` + fsync can never
            // destroy the acknowledged prefix, unlike a full rewrite
            // interrupted mid-copy.
            // vfs-exempt: legacy single-segment lake (see module docs).
            let trim = std::fs::OpenOptions::new().write(true).open(&wal_path)?;
            trim.set_len(valid_len as u64)?;
            trim.sync_data()?;
        }
        // vfs-exempt: legacy single-segment lake (see module docs).
        let wal = std::fs::OpenOptions::new().append(true).open(&wal_path)?;
        Ok(DurableLake {
            dir,
            hasher,
            state: RwLock::new(State { corpus, index }),
            wal: parking_lot::Mutex::new(wal),
        })
    }

    /// Number of tables currently in the lake.
    pub fn num_tables(&self) -> usize {
        self.state.read().corpus.len()
    }

    /// Applies one edit durably: WAL append + fsync, then in-memory apply.
    pub fn apply(&self, record: WalRecord) -> Result<(), StorageError> {
        {
            let mut wal = self.wal.lock();
            wal.write_all(&frame_record(&record))?;
            wal.sync_data()?;
        }
        let mut state = self.state.write();
        let State { corpus, index } = &mut *state;
        let mut updater = IndexUpdater::new(corpus, index, self.hasher);
        record.apply(&mut updater);
        Ok(())
    }

    /// Convenience: insert a table durably; returns its id.
    pub fn insert_table(&self, table: Table) -> Result<TableId, StorageError> {
        let id = TableId::from(self.state.read().corpus.len());
        self.apply(WalRecord::InsertTable { table })?;
        Ok(id)
    }

    /// Runs a top-k discovery under the read lock (concurrent with other
    /// readers).
    pub fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        let state = self.state.read();
        MateDiscovery::new(&state.corpus, &state.index, &self.hasher).discover(query, q_cols, k)
    }

    /// Reads a snapshot of a table (cloned under the read lock).
    pub fn table(&self, id: TableId) -> Option<Table> {
        self.state.read().corpus.get(id).cloned()
    }

    /// Folds the WAL into fresh checkpoint segments and truncates the log.
    pub fn checkpoint(&self) -> Result<(), StorageError> {
        let state = self.state.read();
        persist::save_corpus(&state.corpus, self.dir.join(CORPUS_FILE))?;
        persist::save_index(&state.index, self.dir.join(INDEX_FILE))?;
        drop(state);
        let mut wal = self.wal.lock();
        // vfs-exempt: legacy single-segment lake (see module docs).
        *wal = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(self.dir.join(WAL_FILE))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_table::{RowId, TableBuilder};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mate-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn people() -> Table {
        TableBuilder::new("people", ["first", "last"])
            .row(["ada", "lovelace"])
            .row(["alan", "turing"])
            .build()
    }

    fn query() -> (Table, Vec<ColId>) {
        (
            TableBuilder::new("q", ["a", "b"])
                .row(["alan", "turing"])
                .build(),
            vec![ColId(0), ColId(1)],
        )
    }

    #[test]
    fn create_apply_reopen() {
        let dir = tmpdir("basic");
        {
            let lake = DurableLake::create(&dir, HashSize::B128).unwrap();
            lake.insert_table(people()).unwrap();
            lake.apply(WalRecord::InsertRow {
                table: TableId(0),
                cells: vec!["grace".into(), "hopper".into()],
            })
            .unwrap();
            let (q, key) = query();
            assert_eq!(lake.discover(&q, &key, 1).top_k[0].joinability, 1);
            // No checkpoint: state lives in the WAL only.
        }
        let lake = DurableLake::open(&dir).unwrap();
        assert_eq!(lake.num_tables(), 1);
        let t = lake.table(TableId(0)).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(RowId(2), ColId(0)), "grace");
        let (q, key) = query();
        assert_eq!(lake.discover(&q, &key, 1).top_k[0].joinability, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let dir = tmpdir("checkpoint");
        let lake = DurableLake::create(&dir, HashSize::B128).unwrap();
        lake.insert_table(people()).unwrap();
        lake.checkpoint().unwrap();
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        // State survives reopen from the checkpoint alone.
        drop(lake);
        let lake = DurableLake::open(&dir).unwrap();
        assert_eq!(lake.num_tables(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovered() {
        let dir = tmpdir("torn");
        {
            let lake = DurableLake::create(&dir, HashSize::B128).unwrap();
            lake.insert_table(people()).unwrap();
            lake.apply(WalRecord::InsertRow {
                table: TableId(0),
                cells: vec!["grace".into(), "hopper".into()],
            })
            .unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the WAL.
        let wal_path = dir.join(WAL_FILE);
        let log = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &log[..log.len() - 3]).unwrap();

        let lake = DurableLake::open(&dir).unwrap();
        // The torn insert-row is gone; the insert-table survives.
        assert_eq!(lake.num_tables(), 1);
        assert_eq!(lake.table(TableId(0)).unwrap().num_rows(), 2);
        // And the lake keeps working after recovery.
        lake.apply(WalRecord::InsertRow {
            table: TableId(0),
            cells: vec!["kurt".into(), "goedel".into()],
        })
        .unwrap();
        drop(lake);
        let lake = DurableLake::open(&dir).unwrap();
        assert_eq!(lake.table(TableId(0)).unwrap().num_rows(), 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = tmpdir("concurrent");
        let lake = DurableLake::create(&dir, HashSize::B128).unwrap();
        lake.insert_table(people()).unwrap();

        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let (q, key) = query();
                    for _ in 0..50 {
                        let r = lake.discover(&q, &key, 1);
                        assert!(!r.top_k.is_empty());
                    }
                });
            }
            scope.spawn(|_| {
                for i in 0..20 {
                    lake.apply(WalRecord::InsertRow {
                        table: TableId(0),
                        cells: vec![format!("first{i}"), format!("last{i}")],
                    })
                    .unwrap();
                }
            });
        })
        .unwrap();

        assert_eq!(lake.table(TableId(0)).unwrap().num_rows(), 22);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replayed_state_matches_rebuild() {
        let dir = tmpdir("consistency");
        {
            let lake = DurableLake::create(&dir, HashSize::B128).unwrap();
            lake.insert_table(people()).unwrap();
            lake.apply(WalRecord::UpdateCell {
                table: TableId(0),
                row: RowId(0),
                col: ColId(0),
                value: "augusta".into(),
            })
            .unwrap();
            lake.apply(WalRecord::DeleteRow {
                table: TableId(0),
                row: RowId(1),
            })
            .unwrap();
        }
        let lake = DurableLake::open(&dir).unwrap();
        let state = lake.state.read();
        let fresh = IndexBuilder::new(Xash::new(HashSize::B128)).build(&state.corpus);
        assert_eq!(state.index.num_values(), fresh.num_values());
        for (v, pl) in fresh.iter_values() {
            assert_eq!(state.index.posting_list(v), Some(pl));
        }
        drop(state);
        std::fs::remove_dir_all(dir).ok();
    }
}
