//! Discovery configuration.

use std::sync::Arc;

/// Strategy for choosing the initial query column (§6.1 / §7.5.4).
///
/// The initial column determines how many posting lists are fetched; the
/// paper's heuristic is minimum cardinality. The alternatives exist for the
/// §7.5.4 comparison experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitColumnHeuristic {
    /// Paper default: the key column with the fewest distinct values.
    #[default]
    MinCardinality,
    /// First key column in table column order (baseline i).
    ColumnOrder,
    /// The column containing the longest cell value ("TLS", baseline ii).
    LongestString,
    /// Oracle upper bound: the column fetching the **most** PL items
    /// (baseline iii, "worst-case scenario").
    WorstOracle,
    /// Oracle lower bound: the column fetching the **fewest** PL items
    /// (baseline iv, "best" / ground truth).
    BestOracle,
    /// User-supplied: use the `i`-th column of `Q` ("the column selection can
    /// be supervised and preempted by the user", §4).
    Fixed(usize),
}

impl InitColumnHeuristic {
    /// Label used by the §7.5.4 report.
    pub fn label(self) -> &'static str {
        match self {
            InitColumnHeuristic::MinCardinality => "Cardinality (Mate)",
            InitColumnHeuristic::ColumnOrder => "Column order",
            InitColumnHeuristic::LongestString => "TLS",
            InitColumnHeuristic::WorstOracle => "Worst-case",
            InitColumnHeuristic::BestOracle => "Best (oracle)",
            InitColumnHeuristic::Fixed(_) => "Fixed",
        }
    }
}

/// Tuning knobs of the discovery engine.
#[derive(Debug, Clone)]
pub struct MateConfig {
    /// Initial-column selection strategy.
    pub heuristic: InitColumnHeuristic,
    /// Enable the two table-level pruning rules of §6.2. Disabling them
    /// forces a full scan of every candidate table (ablation).
    pub table_filtering: bool,
    /// Enable super-key row filtering (§6.3). Disabling it degrades MATE to
    /// the SCR baseline: every fetched row goes straight to verification.
    pub row_filtering: bool,
    /// Safety cap on the number of injective column mappings enumerated per
    /// row pair during verification (factorial blow-up guard; Eq. 3).
    pub max_mappings_per_row: usize,
    /// Worker threads for the per-candidate-table loop of Algorithm 1
    /// (values < 2 mean sequential). Any thread count returns results
    /// bit-identical to the sequential engine; see
    /// [`crate::discovery`] for the pruning protocol that keeps the §6.2
    /// filtering rules sound across workers.
    pub query_threads: usize,
    /// Observability hub discovery records into: a `discovery` span per
    /// query, and the clock all query timing (`DiscoveryStats::elapsed`,
    /// per-worker busy time) is read from. Queries over an
    /// [`EngineLake`] use the lake's hub instead (see `discover_lake`).
    ///
    /// [`EngineLake`]: ../../mate_index/struct.EngineLake.html
    pub obs: Arc<mate_obs::Obs>,
}

impl Default for MateConfig {
    fn default() -> Self {
        MateConfig {
            heuristic: InitColumnHeuristic::MinCardinality,
            table_filtering: true,
            row_filtering: true,
            max_mappings_per_row: 10_000,
            query_threads: 1,
            obs: Arc::new(mate_obs::Obs::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = MateConfig::default();
        assert_eq!(c.heuristic, InitColumnHeuristic::MinCardinality);
        assert!(c.table_filtering);
        assert!(c.row_filtering);
        assert!(c.max_mappings_per_row > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(
            InitColumnHeuristic::MinCardinality.label(),
            "Cardinality (Mate)"
        );
        assert_eq!(InitColumnHeuristic::Fixed(2).label(), "Fixed");
    }
}
