//! Discovery over the multi-segment engine.
//!
//! The engine's [`MergedSource`] implements [`mate_index::PostingSource`],
//! so Algorithm 1 runs over it unchanged — this module is just the wiring:
//! borrow the engine's corpus, merged posting view, and global super-key
//! store, and hand them to [`MateDiscovery::from_parts`]. Results are
//! bit-identical to a single-shot built index at every flush state
//! (property-tested in `tests/engine_discovery.rs`).
//!
//! Three entry points: [`discover_engine`] for an exclusively-held
//! [`Engine`] (fresh source per query), [`discover_snapshot`] for an owned
//! [`EngineSnapshot`] (lock-free, immune to concurrent writes), and
//! [`discover_lake`] for a shared [`EngineLake`] (takes the current
//! snapshot, resolves cold runs through the lake's shared cache).
//!
//! [`MergedSource`]: mate_index::MergedSource

use crate::config::MateConfig;
use crate::discovery::{DiscoveryResult, MateDiscovery};
use mate_index::engine::{Engine, EngineLake, EngineSnapshot};
use mate_table::{ColId, Table};

/// Runs a top-k discovery over an engine's merged (memtable + cold
/// segments) view. Constructs a fresh [`mate_index::MergedSource`] snapshot
/// for the query; batch callers that issue many queries against an
/// unchanged engine can instead hold one `engine.source()` and use
/// [`MateDiscovery::from_parts`] directly to share the resolved-list cache.
///
/// [`DiscoveryStats::source_layers`](crate::stats::DiscoveryStats::source_layers)
/// is set to the number of layers that served the query.
pub fn discover_engine(
    engine: &Engine,
    config: MateConfig,
    query: &Table,
    q_cols: &[ColId],
    k: usize,
) -> DiscoveryResult {
    let source = engine.source();
    let hasher = engine.hasher();
    let mut result = MateDiscovery::from_parts(
        engine.corpus(),
        &source,
        engine.superkeys(),
        &hasher,
        config,
    )
    .discover(query, q_cols, k);
    result.stats.source_layers = engine.num_layers();
    result
}

/// Runs a top-k discovery over an owned [`EngineSnapshot`] — the lock-free
/// serving path. The snapshot pins corpus, layer stack, and super keys
/// together, so the query is immune to concurrent flushes, compactions,
/// and ingest, and results are bit-identical to [`discover_engine`] on the
/// engine state the snapshot was taken from. Batch callers holding one
/// snapshot across many queries share nothing but the immutable data;
/// each call builds a fresh merged view (use
/// [`MateDiscovery::from_parts`] with one
/// [`EngineSnapshot::source`] to also share the resolved-list cache).
///
/// Sets [`DiscoveryStats::snapshot_epoch`] to the snapshot's source epoch
/// ([`DiscoveryStats::snapshot_lag`] stays 0 — a bare snapshot has no
/// "current" state to compare against; [`discover_lake`] fills it in),
/// and records [`DiscoveryStats::pager_hits`] / `pager_misses` deltas —
/// the page-cache traffic the query's cold probes generated.
///
/// [`DiscoveryStats::snapshot_epoch`]: crate::stats::DiscoveryStats::snapshot_epoch
/// [`DiscoveryStats::snapshot_lag`]: crate::stats::DiscoveryStats::snapshot_lag
/// [`DiscoveryStats::pager_hits`]: crate::stats::DiscoveryStats::pager_hits
pub fn discover_snapshot(
    snapshot: &EngineSnapshot,
    config: MateConfig,
    query: &Table,
    q_cols: &[ColId],
    k: usize,
) -> DiscoveryResult {
    let source = snapshot.source();
    let hasher = snapshot.hasher();
    let pager0 = snapshot.pager_stats();
    let mut result = MateDiscovery::from_parts(
        snapshot.corpus(),
        &source,
        snapshot.superkeys(),
        &hasher,
        config,
    )
    .discover(query, q_cols, k);
    result.stats.source_layers = snapshot.num_layers();
    result.stats.snapshot_epoch = snapshot.source_epoch();
    let pager1 = snapshot.pager_stats();
    result.stats.pager_hits = pager1.hits.saturating_sub(pager0.hits);
    result.stats.pager_misses = pager1.misses.saturating_sub(pager0.misses);
    result
}

/// Like [`discover_snapshot`], but also returns the query's
/// [`QueryProfile`](mate_obs::QueryProfile): init-phase vs total time,
/// per-worker busy time, postings probed, blocks decoded/skipped, and
/// cache/snapshot context — everything an operator needs to explain *why*
/// a query was slow, derived from the same [`DiscoveryStats`] the result
/// carries (no extra measurement cost).
///
/// [`DiscoveryStats`]: crate::stats::DiscoveryStats
pub fn discover_snapshot_profiled(
    snapshot: &EngineSnapshot,
    config: MateConfig,
    query: &Table,
    q_cols: &[ColId],
    k: usize,
) -> (DiscoveryResult, mate_obs::QueryProfile) {
    let result = discover_snapshot(snapshot, config, query, q_cols, k);
    let profile = result.stats.profile();
    (result, profile)
}

/// Runs a top-k discovery over an [`EngineLake`]: clones the published
/// snapshot (no engine lock — returns promptly even mid-flush, and never
/// delays writers) and probes it through the lake's shared
/// [`SourceCache`](mate_index::SourceCache), so cold-layer resolutions
/// are amortized **across queries** instead of reconstructed per query —
/// the cache keys itself by source epoch, and results are bit-identical
/// to [`discover_engine`] on the same snapshot (property-tested in
/// `tests/engine_lake.rs`).
///
/// Sets [`DiscoveryStats::source_layers`], the snapshot-age counters
/// [`DiscoveryStats::snapshot_epoch`] / `snapshot_lag` (how many
/// structural changes the served snapshot fell behind the published state
/// by query end), plus [`DiscoveryStats::cold_cache_hits`] /
/// `cold_cache_misses` and [`DiscoveryStats::pager_hits`] /
/// `pager_misses` deltas for this query.
///
/// [`DiscoveryStats::source_layers`]: crate::stats::DiscoveryStats::source_layers
/// [`DiscoveryStats::snapshot_epoch`]: crate::stats::DiscoveryStats::snapshot_epoch
/// [`DiscoveryStats::cold_cache_hits`]: crate::stats::DiscoveryStats::cold_cache_hits
/// [`DiscoveryStats::pager_hits`]: crate::stats::DiscoveryStats::pager_hits
pub fn discover_lake(
    lake: &EngineLake,
    mut config: MateConfig,
    query: &Table,
    q_cols: &[ColId],
    k: usize,
) -> DiscoveryResult {
    // Queries over a lake record into the lake's obs hub (its clock, its
    // `discovery` span histogram), so one snapshot shows ingest, flush, and
    // query activity side by side.
    config.obs = std::sync::Arc::clone(lake.obs_handle());
    let reader = lake.reader();
    let snapshot = reader.snapshot();
    let source = reader.source();
    let hasher = snapshot.hasher();
    let (hits0, misses0) = (lake.source_cache().hits(), lake.source_cache().misses());
    let pager0 = snapshot.pager_stats();
    let mut result = MateDiscovery::from_parts(
        snapshot.corpus(),
        &source,
        snapshot.superkeys(),
        &hasher,
        config,
    )
    .discover(query, q_cols, k);
    result.stats.source_layers = snapshot.num_layers();
    result.stats.snapshot_epoch = snapshot.source_epoch();
    result.stats.snapshot_lag = lake
        .published_epoch()
        .saturating_sub(snapshot.source_epoch());
    result.stats.cold_cache_hits = lake.source_cache().hits().saturating_sub(hits0);
    result.stats.cold_cache_misses = lake.source_cache().misses().saturating_sub(misses0);
    let pager1 = snapshot.pager_stats();
    result.stats.pager_hits = pager1.hits.saturating_sub(pager0.hits);
    result.stats.pager_misses = pager1.misses.saturating_sub(pager0.misses);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::engine::EngineConfig;
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    #[test]
    fn engine_discovery_matches_single_shot_across_flushes() {
        let dir = std::env::temp_dir().join(format!("mate-engine-query-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            max_cold_segments: 0,
            ..EngineConfig::default()
        };
        let mut engine = Engine::create(&dir, config).unwrap();
        for t in 0..6 {
            let mut tb = TableBuilder::new(format!("t{t}"), ["a", "b"]);
            for i in 0..=t {
                tb = tb.row([format!("k{i}"), format!("v{i}")]);
            }
            engine.insert_table(tb.build()).unwrap();
            if t % 2 == 1 {
                engine.flush().unwrap();
            }
        }
        let query = TableBuilder::new("q", ["x", "y"])
            .row(["k0", "v0"])
            .row(["k1", "v1"])
            .row(["k2", "v2"])
            .build();
        let key = [ColId(0), ColId(1)];

        let fresh = IndexBuilder::new(Xash::new(HashSize::B128)).build(engine.corpus());
        let hasher = Xash::new(HashSize::B128);
        let single = MateDiscovery::new(engine.corpus(), &fresh, &hasher).discover(&query, &key, 3);
        let merged = discover_engine(&engine, MateConfig::default(), &query, &key, 3);
        assert_eq!(single.top_k, merged.top_k);
        assert_eq!(merged.stats.source_layers, engine.num_layers());
        assert!(merged.stats.source_layers > 1, "flushes built cold layers");

        // The lake path returns the same results and amortizes the cold
        // walk: a repeated query hits the shared cache.
        let lake = mate_index::EngineLake::new(engine);
        let first = discover_lake(&lake, MateConfig::default(), &query, &key, 3);
        assert_eq!(first.top_k, single.top_k);
        assert!(first.stats.cold_cache_misses > 0, "first query fills");
        let second = discover_lake(&lake, MateConfig::default(), &query, &key, 3);
        assert_eq!(second.top_k, single.top_k);
        assert!(second.stats.cold_cache_hits > 0, "repeat query hits");
        assert_eq!(second.stats.cold_cache_misses, 0, "nothing left to fill");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn queries_record_spans_profiles_and_use_the_pluggable_clock() {
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("mate-obs-query-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut engine = Engine::create(&dir, EngineConfig::default()).unwrap();
        for t in 0..4 {
            let mut tb = TableBuilder::new(format!("t{t}"), ["a", "b"]);
            for i in 0..=(2 * t) {
                tb = tb.row([format!("k{i}"), format!("v{i}")]);
            }
            engine.insert_table(tb.build()).unwrap();
        }
        engine.flush().unwrap();
        let query = TableBuilder::new("q", ["x", "y"])
            .row(["k0", "v0"])
            .row(["k1", "v1"])
            .build();
        let key = [ColId(0), ColId(1)];

        // A lake query lands a `discovery` span in the *lake's* obs hub,
        // even though the passed config carries its own fresh hub.
        let lake = mate_index::EngineLake::new(engine);
        let r = discover_lake(&lake, MateConfig::default(), &query, &key, 2);
        let snap = lake.obs();
        assert!(
            snap.histograms
                .iter()
                .any(|(n, h)| n == "span_us.discovery" && h.count() >= 1),
            "lake hub should hold the discovery span"
        );
        assert!(snap.events.iter().any(|e| e.kind == "discovery"));

        // The profile condenses the same run's stats.
        let p = r.stats.profile();
        assert!(p.total_us >= p.init_us);
        assert_eq!(p.worker_busy_us.len(), 1, "sequential run: one worker");

        // Profiled snapshot entry point returns both halves consistently.
        let reader = lake.reader();
        let (res, prof) =
            discover_snapshot_profiled(reader.snapshot(), MateConfig::default(), &query, &key, 2);
        assert_eq!(res.top_k, r.top_k);
        assert_eq!(prof, res.stats.profile());

        // A parallel run reports one busy time per worker.
        let cfg = MateConfig {
            query_threads: 3,
            ..Default::default()
        };
        let (_, prof) = discover_snapshot_profiled(reader.snapshot(), cfg, &query, &key, 2);
        assert_eq!(prof.worker_busy_us.len(), 3);

        // All query timing comes from the pluggable clock: under a manual
        // clock that never advances, elapsed is exactly zero.
        let obs = Arc::new(mate_obs::Obs::with_clock(Arc::new(
            mate_obs::ManualClock::new(),
        )));
        let cfg = MateConfig {
            obs,
            ..Default::default()
        };
        let frozen = discover_snapshot(reader.snapshot(), cfg, &query, &key, 2);
        assert_eq!(frozen.top_k, r.top_k);
        assert_eq!(frozen.stats.elapsed, std::time::Duration::ZERO);
        assert_eq!(frozen.stats.init_elapsed, std::time::Duration::ZERO);
        std::fs::remove_dir_all(dir).ok();
    }
}
