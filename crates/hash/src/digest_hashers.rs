//! Digest-style baseline hashers: MD5, Murmur3, CityHash (§7.1.2).
//!
//! These fill the hash array with a raw digest, so on average ~50% of the
//! bits are 1. OR-aggregating a handful of such hashes saturates the super
//! key ("if a table contains six columns the aggregation ... will on average
//! turn 98% of the super key to 1s"), which is exactly the failure mode
//! Tables 2–3 demonstrate. For sizes beyond the native digest width the
//! array is filled by re-hashing with an incrementing seed.

use crate::bits::{HashBits, HashSize};
use crate::city::city_hash64_with_seed;
use crate::md5::md5;
use crate::murmur3::murmur3_x64_128;
use crate::traits::RowHasher;

fn fill_words(size: HashSize, mut next: impl FnMut(u64) -> u64) -> HashBits {
    let mut out = HashBits::zero(size);
    let mut words = [0u64; 8];
    for (i, w) in words[..size.words()].iter_mut().enumerate() {
        *w = next(i as u64);
    }
    // Transfer into HashBits by setting bits (keeps HashBits encapsulated).
    for (i, w) in words[..size.words()].iter().enumerate() {
        for b in 0..64 {
            if w & (1 << b) != 0 {
                out.set_bit(i * 64 + b);
            }
        }
    }
    out
}

/// MD5 digest hasher. The native 128-bit digest fills B128 exactly; larger
/// sizes append MD5 of the value concatenated with a block counter.
#[derive(Debug, Clone, Copy)]
pub struct Md5Hasher {
    size: HashSize,
}

impl Md5Hasher {
    /// Creates an MD5 hasher for the given array size.
    pub fn new(size: HashSize) -> Self {
        Md5Hasher { size }
    }
}

impl RowHasher for Md5Hasher {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        if value.is_empty() {
            return HashBits::zero(self.size);
        }
        let nblocks = self.size.words() / 2;
        let mut digests = Vec::with_capacity(nblocks);
        for block in 0..nblocks {
            let d = if block == 0 {
                md5(value.as_bytes())
            } else {
                let mut buf = value.as_bytes().to_vec();
                buf.push(block as u8);
                md5(&buf)
            };
            digests.push(d);
        }
        fill_words(self.size, |i| {
            let d = &digests[i as usize / 2];
            let off = (i as usize % 2) * 8;
            u64::from_le_bytes(d[off..off + 8].try_into().unwrap())
        })
    }

    fn name(&self) -> &'static str {
        "MD5"
    }
}

/// Murmur3 (x64 128) digest hasher, extended with per-block seeds.
#[derive(Debug, Clone, Copy)]
pub struct MurmurHasher {
    size: HashSize,
}

impl MurmurHasher {
    /// Creates a Murmur3 hasher for the given array size.
    pub fn new(size: HashSize) -> Self {
        MurmurHasher { size }
    }
}

impl RowHasher for MurmurHasher {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        if value.is_empty() {
            return HashBits::zero(self.size);
        }
        fill_words(self.size, |i| {
            let h = murmur3_x64_128(value.as_bytes(), i / 2);
            h[(i % 2) as usize]
        })
    }

    fn name(&self) -> &'static str {
        "Murmur"
    }
}

/// CityHash64 digest hasher: one seeded CityHash64 per word.
#[derive(Debug, Clone, Copy)]
pub struct CityHasher {
    size: HashSize,
}

impl CityHasher {
    /// Creates a CityHash hasher for the given array size.
    pub fn new(size: HashSize) -> Self {
        CityHasher { size }
    }
}

impl RowHasher for CityHasher {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        if value.is_empty() {
            return HashBits::zero(self.size);
        }
        fill_words(self.size, |i| city_hash64_with_seed(value.as_bytes(), i))
    }

    fn name(&self) -> &'static str {
        "City"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_density_near_half() {
        // The defining property: ~50% of bits set (this is why digest hashes
        // make bad super keys).
        for hasher in [
            Box::new(Md5Hasher::new(HashSize::B128)) as Box<dyn RowHasher>,
            Box::new(MurmurHasher::new(HashSize::B128)),
            Box::new(CityHasher::new(HashSize::B128)),
        ] {
            let mut total = 0u32;
            for i in 0..50 {
                total += hasher.hash_value(&format!("value-{i}")).count_ones();
            }
            let avg = total as f64 / 50.0;
            assert!(
                (44.0..=84.0).contains(&avg),
                "{}: avg density {avg} not near 64",
                hasher.name()
            );
        }
    }

    #[test]
    fn all_sizes_fill_whole_array() {
        for size in HashSize::ALL {
            for hasher in [
                Box::new(Md5Hasher::new(size)) as Box<dyn RowHasher>,
                Box::new(MurmurHasher::new(size)),
                Box::new(CityHasher::new(size)),
            ] {
                let h = hasher.hash_value("some cell value");
                assert_eq!(h.size(), size);
                // Bits must appear in the upper half too (the extension worked).
                assert!(
                    h.iter_ones().any(|i| i >= size.bits() / 2),
                    "{} at {size}: no high bits",
                    hasher.name()
                );
            }
        }
    }

    #[test]
    fn empty_is_zero() {
        assert!(Md5Hasher::new(HashSize::B128).hash_value("").is_zero());
        assert!(MurmurHasher::new(HashSize::B256).hash_value("").is_zero());
        assert!(CityHasher::new(HashSize::B512).hash_value("").is_zero());
    }

    #[test]
    fn md5_first_block_is_true_md5() {
        let h = Md5Hasher::new(HashSize::B128).hash_value("abc");
        let d = crate::md5::md5(b"abc");
        let w0 = u64::from_le_bytes(d[0..8].try_into().unwrap());
        let w1 = u64::from_le_bytes(d[8..16].try_into().unwrap());
        assert_eq!(h.words(), &[w0, w1]);
    }

    #[test]
    fn deterministic() {
        let h = CityHasher::new(HashSize::B512);
        assert_eq!(h.hash_value("x"), h.hash_value("x"));
    }
}
