//! A fast FxHash-style hasher for hot-path hash maps.
//!
//! The inverted index performs one hash-map probe per posting-list lookup;
//! SipHash (std's default) dominates profiles there. This is the rustc /
//! Firefox "Fx" multiply-rotate hash — low quality but extremely fast, and
//! HashDoS is not a concern for an offline index. Implemented locally to
//! stay within the allowed dependency set (see DESIGN.md).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with Fx hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of("hello"), hash_of("hello"));
        assert_eq!(hash_of(42u64), hash_of(42u64));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of("hello"), hash_of("hellp"));
        assert_ne!(hash_of(1u32), hash_of(2u32));
    }

    #[test]
    fn map_and_set_usable() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn uneven_byte_lengths() {
        // Exercise the chunk remainder path.
        let mut seen = std::collections::HashSet::new();
        for len in 0..20 {
            let v: Vec<u8> = (0..len).collect();
            assert!(seen.insert(hash_of(&v[..])));
        }
    }
}
