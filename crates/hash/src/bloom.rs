//! Bloom-filter-style baseline hashers (§7.1.2 of the paper).
//!
//! * [`HashTableHasher`] ("HT") — a single hash function setting one bit.
//! * [`BloomFilterHasher`] ("BF") — `H` independent Murmur3 hashes; `H` is
//!   derived from the expected number of values per row (the corpus's average
//!   column count `V`) via `H = (|a| / V) · ln 2`, the classic optimum.
//! * [`LessHashBloomFilter`] ("LHBF", Kirsch & Mitzenmacher 2006) — derives
//!   the `H` probe positions from just two base hashes:
//!   `g_i(x) = h1(x) + i · h2(x)`.
//!
//! All three set *few* bits like XASH, but are agnostic to the syntactic
//! structure of values — the comparison axis of Tables 2–3.

use crate::bits::{HashBits, HashSize};
use crate::murmur3::murmur3_x64_128;
use crate::traits::RowHasher;

/// Computes the classic optimal number of Bloom hash functions
/// `H = (|a| / V) · ln 2`, clamped to at least 1.
///
/// `expected_values` is `V`, the number of values OR-ed into one filter —
/// MATE uses the corpus's average column count (5 for web tables, 26 for
/// open data in the paper).
pub fn optimal_num_hashes(size: HashSize, expected_values: usize) -> usize {
    let v = expected_values.max(1) as f64;
    ((size.bits() as f64 / v) * std::f64::consts::LN_2)
        .round()
        .max(1.0) as usize
}

/// Single-hash baseline ("HT"): one Murmur3-derived bit per value.
#[derive(Debug, Clone, Copy)]
pub struct HashTableHasher {
    size: HashSize,
}

impl HashTableHasher {
    /// Creates an HT hasher for the given array size.
    pub fn new(size: HashSize) -> Self {
        HashTableHasher { size }
    }
}

impl RowHasher for HashTableHasher {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        let mut out = HashBits::zero(self.size);
        if value.is_empty() {
            return out;
        }
        let h = murmur3_x64_128(value.as_bytes(), 0)[0];
        out.set_bit((h % self.size.bits() as u64) as usize);
        out
    }

    fn name(&self) -> &'static str {
        "HT"
    }
}

/// Standard Bloom filter baseline ("BF"): `num_hashes` independent Murmur3
/// hashes (independent seeds), one bit each.
#[derive(Debug, Clone, Copy)]
pub struct BloomFilterHasher {
    size: HashSize,
    num_hashes: usize,
}

impl BloomFilterHasher {
    /// Creates a BF hasher with an explicit hash count.
    pub fn new(size: HashSize, num_hashes: usize) -> Self {
        assert!(num_hashes >= 1, "bloom filter needs at least one hash");
        BloomFilterHasher { size, num_hashes }
    }

    /// Creates a BF hasher with the optimal hash count for `expected_values`
    /// values per row (the paper sets this to the corpus's average column
    /// count: 5 for web tables, 26 for open data).
    pub fn for_corpus(size: HashSize, expected_values: usize) -> Self {
        BloomFilterHasher::new(size, optimal_num_hashes(size, expected_values))
    }

    /// Number of hash functions in use.
    pub fn num_hashes(&self) -> usize {
        self.num_hashes
    }
}

impl RowHasher for BloomFilterHasher {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        let mut out = HashBits::zero(self.size);
        if value.is_empty() {
            return out;
        }
        let nbits = self.size.bits() as u64;
        for i in 0..self.num_hashes {
            let h = murmur3_x64_128(value.as_bytes(), i as u64)[0];
            out.set_bit((h % nbits) as usize);
        }
        out
    }

    fn name(&self) -> &'static str {
        "BF"
    }
}

/// Less-Hashing Bloom Filter baseline ("LHBF", Kirsch & Mitzenmacher):
/// two base Murmur3 hashes generate all probe positions as
/// `g_i = h1 + i·h2 mod |a|`.
#[derive(Debug, Clone, Copy)]
pub struct LessHashBloomFilter {
    size: HashSize,
    num_hashes: usize,
}

impl LessHashBloomFilter {
    /// Creates an LHBF with an explicit probe count.
    pub fn new(size: HashSize, num_hashes: usize) -> Self {
        assert!(num_hashes >= 1, "LHBF needs at least one probe");
        LessHashBloomFilter { size, num_hashes }
    }

    /// Probe count from the same optimum as [`BloomFilterHasher::for_corpus`].
    pub fn for_corpus(size: HashSize, expected_values: usize) -> Self {
        LessHashBloomFilter::new(size, optimal_num_hashes(size, expected_values))
    }
}

impl RowHasher for LessHashBloomFilter {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        let mut out = HashBits::zero(self.size);
        if value.is_empty() {
            return out;
        }
        let [h1, h2] = murmur3_x64_128(value.as_bytes(), 0);
        // Force h2 odd so probe positions cycle through the whole array.
        let h2 = h2 | 1;
        let nbits = self.size.bits() as u64;
        for i in 0..self.num_hashes as u64 {
            let g = h1.wrapping_add(i.wrapping_mul(h2));
            out.set_bit((g % nbits) as usize);
        }
        out
    }

    fn name(&self) -> &'static str {
        "LHBF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_hash_count_matches_formula() {
        // 128 bits, V=5 → 128/5·ln2 ≈ 17.7 → 18.
        assert_eq!(optimal_num_hashes(HashSize::B128, 5), 18);
        // 128 bits, V=26 → ≈ 3.4 → 3.
        assert_eq!(optimal_num_hashes(HashSize::B128, 26), 3);
        assert_eq!(optimal_num_hashes(HashSize::B128, 10_000), 1);
    }

    #[test]
    fn ht_sets_exactly_one_bit() {
        let h = HashTableHasher::new(HashSize::B128);
        assert_eq!(h.hash_value("anything").count_ones(), 1);
        assert!(h.hash_value("").is_zero());
    }

    #[test]
    fn bf_sets_at_most_k_bits() {
        let h = BloomFilterHasher::new(HashSize::B128, 7);
        let bits = h.hash_value("value");
        assert!(bits.count_ones() >= 1 && bits.count_ones() <= 7);
        assert!(h.hash_value("").is_zero());
    }

    #[test]
    fn lhbf_sets_at_most_k_bits() {
        let h = LessHashBloomFilter::new(HashSize::B256, 5);
        let bits = h.hash_value("value");
        assert!(bits.count_ones() >= 1 && bits.count_ones() <= 5);
        assert!(h.hash_value("").is_zero());
    }

    #[test]
    fn deterministic() {
        for hasher in [
            Box::new(BloomFilterHasher::new(HashSize::B128, 4)) as Box<dyn RowHasher>,
            Box::new(LessHashBloomFilter::new(HashSize::B128, 4)),
            Box::new(HashTableHasher::new(HashSize::B128)),
        ] {
            assert_eq!(hasher.hash_value("abc"), hasher.hash_value("abc"));
        }
    }

    #[test]
    fn different_values_differ_mostly() {
        let h = BloomFilterHasher::new(HashSize::B128, 6);
        let mut distinct = std::collections::HashSet::new();
        for i in 0..100 {
            distinct.insert(h.hash_value(&format!("value-{i}")).words().to_vec());
        }
        assert!(distinct.len() > 95);
    }

    #[test]
    fn bf_and_lhbf_differ() {
        let bf = BloomFilterHasher::new(HashSize::B128, 5);
        let lhbf = LessHashBloomFilter::new(HashSize::B128, 5);
        // Same probe count but different derivation → (almost surely) different patterns.
        assert_ne!(bf.hash_value("some value"), lhbf.hash_value("some value"));
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn bf_rejects_zero_hashes() {
        BloomFilterHasher::new(HashSize::B128, 0);
    }
}
