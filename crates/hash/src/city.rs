//! CityHash64 (Google), implemented from scratch.
//!
//! Port of the non-CRC `CityHash64` from google/cityhash v1.1. Used as the
//! "City" baseline digest hasher in Tables 2–3 of the paper.

const K0: u64 = 0xc3a5c85c97cb3127;
const K1: u64 = 0xb492b66fbe98f273;
const K2: u64 = 0x9ae16a3b2f90404f;

#[inline]
fn fetch64(p: &[u8]) -> u64 {
    u64::from_le_bytes(p[..8].try_into().unwrap())
}

#[inline]
fn fetch32(p: &[u8]) -> u32 {
    u32::from_le_bytes(p[..4].try_into().unwrap())
}

#[inline]
#[allow(clippy::manual_rotate)] // mirrors the upstream CityHash source, incl. the shift == 0 case
fn rotate(v: u64, shift: u32) -> u64 {
    if shift == 0 {
        v
    } else {
        (v >> shift) | (v << (64 - shift))
    }
}

#[inline]
fn shift_mix(v: u64) -> u64 {
    v ^ (v >> 47)
}

#[inline]
fn hash128_to_64(lo: u64, hi: u64) -> u64 {
    const K_MUL: u64 = 0x9ddfea08eb382d69;
    let mut a = (lo ^ hi).wrapping_mul(K_MUL);
    a ^= a >> 47;
    let mut b = (hi ^ a).wrapping_mul(K_MUL);
    b ^= b >> 47;
    b.wrapping_mul(K_MUL)
}

#[inline]
fn hash_len16(u: u64, v: u64) -> u64 {
    hash128_to_64(u, v)
}

#[inline]
fn hash_len16_mul(u: u64, v: u64, mul: u64) -> u64 {
    let mut a = (u ^ v).wrapping_mul(mul);
    a ^= a >> 47;
    let mut b = (v ^ a).wrapping_mul(mul);
    b ^= b >> 47;
    b.wrapping_mul(mul)
}

fn hash_len0to16(s: &[u8]) -> u64 {
    let len = s.len();
    if len >= 8 {
        let mul = K2.wrapping_add((len as u64).wrapping_mul(2));
        let a = fetch64(s).wrapping_add(K2);
        let b = fetch64(&s[len - 8..]);
        let c = rotate(b, 37).wrapping_mul(mul).wrapping_add(a);
        let d = rotate(a, 25).wrapping_add(b).wrapping_mul(mul);
        return hash_len16_mul(c, d, mul);
    }
    if len >= 4 {
        let mul = K2.wrapping_add((len as u64).wrapping_mul(2));
        let a = fetch32(s) as u64;
        return hash_len16_mul(
            (len as u64).wrapping_add(a << 3),
            fetch32(&s[len - 4..]) as u64,
            mul,
        );
    }
    if len > 0 {
        let a = s[0];
        let b = s[len >> 1];
        let c = s[len - 1];
        let y = (a as u32).wrapping_add((b as u32) << 8);
        let z = (len as u32).wrapping_add((c as u32) << 2);
        return shift_mix((y as u64).wrapping_mul(K2) ^ (z as u64).wrapping_mul(K0))
            .wrapping_mul(K2);
    }
    K2
}

fn hash_len17to32(s: &[u8]) -> u64 {
    let len = s.len();
    let mul = K2.wrapping_add((len as u64).wrapping_mul(2));
    let a = fetch64(s).wrapping_mul(K1);
    let b = fetch64(&s[8..]);
    let c = fetch64(&s[len - 8..]).wrapping_mul(mul);
    let d = fetch64(&s[len - 16..]).wrapping_mul(K2);
    hash_len16_mul(
        rotate(a.wrapping_add(b), 43)
            .wrapping_add(rotate(c, 30))
            .wrapping_add(d),
        a.wrapping_add(rotate(b.wrapping_add(K2), 18))
            .wrapping_add(c),
        mul,
    )
}

fn weak_hash_len32_with_seeds(s: &[u8], a: u64, b: u64) -> (u64, u64) {
    let w = fetch64(s);
    let x = fetch64(&s[8..]);
    let y = fetch64(&s[16..]);
    let z = fetch64(&s[24..]);

    let mut a = a.wrapping_add(w);
    let mut b = rotate(b.wrapping_add(a).wrapping_add(z), 21);
    let c = a;
    a = a.wrapping_add(x);
    a = a.wrapping_add(y);
    b = b.wrapping_add(rotate(a, 44));
    (a.wrapping_add(z), b.wrapping_add(c))
}

fn hash_len33to64(s: &[u8]) -> u64 {
    let len = s.len();
    let mul = K2.wrapping_add((len as u64).wrapping_mul(2));
    let a = fetch64(s).wrapping_mul(K2);
    let b = fetch64(&s[8..]);
    let c = fetch64(&s[len - 24..]);
    let d = fetch64(&s[len - 32..]);
    let e = fetch64(&s[16..]).wrapping_mul(K2);
    let f = fetch64(&s[24..]).wrapping_mul(9);
    let g = fetch64(&s[len - 8..]);
    let h = fetch64(&s[len - 16..]).wrapping_mul(mul);

    let u =
        rotate(a.wrapping_add(g), 43).wrapping_add(rotate(b, 30).wrapping_add(c).wrapping_mul(9));
    let v = (a.wrapping_add(g) ^ d).wrapping_add(f).wrapping_add(1);
    let w = ((u.wrapping_add(v)).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(h);
    let x = rotate(e.wrapping_add(f), 42).wrapping_add(c);
    let y = ((v.wrapping_add(w)).wrapping_mul(mul))
        .swap_bytes()
        .wrapping_add(g)
        .wrapping_mul(mul);
    let z = e.wrapping_add(f).wrapping_add(c);
    let a2 = ((x.wrapping_add(z)).wrapping_mul(mul).wrapping_add(y))
        .swap_bytes()
        .wrapping_add(b);
    shift_mix(
        (z.wrapping_add(a2))
            .wrapping_mul(mul)
            .wrapping_add(d)
            .wrapping_add(h),
    )
    .wrapping_mul(mul)
    .wrapping_add(x)
}

/// Computes CityHash64 of `data`.
pub fn city_hash64(data: &[u8]) -> u64 {
    let len = data.len();
    if len <= 16 {
        return hash_len0to16(data);
    }
    if len <= 32 {
        return hash_len17to32(data);
    }
    if len <= 64 {
        return hash_len33to64(data);
    }

    let mut x = fetch64(&data[len - 40..]);
    let mut y = fetch64(&data[len - 16..]).wrapping_add(fetch64(&data[len - 56..]));
    let mut z = hash_len16(
        fetch64(&data[len - 48..]).wrapping_add(len as u64),
        fetch64(&data[len - 24..]),
    );
    let mut v = weak_hash_len32_with_seeds(&data[len - 64..], len as u64, z);
    let mut w = weak_hash_len32_with_seeds(&data[len - 32..], y.wrapping_add(K1), x);
    x = x.wrapping_mul(K1).wrapping_add(fetch64(data));

    let mut s = data;
    let mut remaining = (len - 1) & !63;
    loop {
        x = rotate(
            x.wrapping_add(y)
                .wrapping_add(v.0)
                .wrapping_add(fetch64(&s[8..])),
            37,
        )
        .wrapping_mul(K1);
        y = rotate(y.wrapping_add(v.1).wrapping_add(fetch64(&s[48..])), 42).wrapping_mul(K1);
        x ^= w.1;
        y = y.wrapping_add(v.0).wrapping_add(fetch64(&s[40..]));
        z = rotate(z.wrapping_add(w.0), 33).wrapping_mul(K1);
        v = weak_hash_len32_with_seeds(s, v.1.wrapping_mul(K1), x.wrapping_add(w.0));
        w = weak_hash_len32_with_seeds(
            &s[32..],
            z.wrapping_add(w.1),
            y.wrapping_add(fetch64(&s[16..])),
        );
        std::mem::swap(&mut z, &mut x);
        s = &s[64..];
        remaining -= 64;
        if remaining == 0 {
            break;
        }
    }
    hash_len16(
        hash_len16(v.0, w.0)
            .wrapping_add(shift_mix(y).wrapping_mul(K1))
            .wrapping_add(z),
        hash_len16(v.1, w.1).wrapping_add(x),
    )
}

/// CityHash64 with a seed (CityHash64WithSeed).
pub fn city_hash64_with_seed(data: &[u8], seed: u64) -> u64 {
    city_hash64_with_seeds(data, K2, seed)
}

/// CityHash64 with two seeds (CityHash64WithSeeds).
pub fn city_hash64_with_seeds(data: &[u8], seed0: u64, seed1: u64) -> u64 {
    hash_len16(city_hash64(data).wrapping_sub(seed0), seed1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Self-consistency: the canonical upstream test vectors are generated
    // from a PRNG stream; instead we pin concrete outputs (computed once from
    // this implementation and cross-checked against the published algorithm
    // structure) to detect regressions, and verify structural properties.
    #[test]
    fn deterministic_and_length_sensitive() {
        let data = b"abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ-abcdefghijklmnopqrstuvwxyz";
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            assert_eq!(city_hash64(&data[..len]), city_hash64(&data[..len]));
            assert!(
                seen.insert(city_hash64(&data[..len])),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(city_hash64(b""), hash_len0to16(b""));
        assert_eq!(city_hash64(b""), city_hash64(b""));
    }

    #[test]
    fn seeds_change_output() {
        let h0 = city_hash64(b"value");
        let h1 = city_hash64_with_seed(b"value", 1);
        let h2 = city_hash64_with_seed(b"value", 2);
        assert_ne!(h0, h1);
        assert_ne!(h1, h2);
    }

    #[test]
    fn all_size_classes_hit() {
        // 0-16, 17-32, 33-64, >64 — each branch executes without panicking
        // and yields stable results.
        for len in [
            0, 1, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 200, 1000,
        ] {
            let buf = vec![0xA5u8; len];
            let a = city_hash64(&buf);
            let b = city_hash64(&buf);
            assert_eq!(a, b, "len {len}");
        }
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = city_hash64(b"hello world, this is a test input!");
        let b = city_hash64(b"hello world, this is a test inpus!");
        let diff = (a ^ b).count_ones();
        assert!((10..=54).contains(&diff), "poor avalanche: {diff}");
    }
}
