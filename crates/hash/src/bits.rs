//! Fixed-size bit arrays and the super-key containment predicate.
//!
//! Hash results and super keys are 128/256/512-bit arrays. [`HashBits`] is an
//! inline value type (no allocation) sized for the largest case; super keys
//! at rest live in flat `[u64]` storage inside the index (see `mate-index`),
//! and the hot-path containment test [`covers`] operates directly on word
//! slices so filtering never materializes intermediate values.

/// Supported hash-array sizes (the paper evaluates 128, 256, and 512 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashSize {
    /// 128-bit hash array (2 words) — the paper's default.
    B128,
    /// 256-bit hash array (4 words).
    B256,
    /// 512-bit hash array (8 words).
    B512,
}

impl HashSize {
    /// Number of bits in the array.
    #[inline]
    pub const fn bits(self) -> usize {
        match self {
            HashSize::B128 => 128,
            HashSize::B256 => 256,
            HashSize::B512 => 512,
        }
    }

    /// Number of 64-bit words backing the array.
    #[inline]
    pub const fn words(self) -> usize {
        self.bits() / 64
    }

    /// Parses from a bit count.
    pub fn from_bits(bits: usize) -> Option<HashSize> {
        match bits {
            128 => Some(HashSize::B128),
            256 => Some(HashSize::B256),
            512 => Some(HashSize::B512),
            _ => None,
        }
    }

    /// All supported sizes, smallest first.
    pub const ALL: [HashSize; 3] = [HashSize::B128, HashSize::B256, HashSize::B512];
}

impl std::fmt::Display for HashSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// Maximum number of words any [`HashSize`] needs.
pub const MAX_WORDS: usize = 8;

/// A fixed-size bit array holding one hash result or one aggregated super key.
///
/// Bit `i` lives in `words[i / 64]` at position `i % 64`. Word 0 holds the
/// *length segment* of XASH, so the word-wise containment loop checks length
/// compatibility first — the paper's short-circuit optimization (§5.3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashBits {
    nwords: u8,
    words: [u64; MAX_WORDS],
}

impl HashBits {
    /// The all-zero array of the given size.
    #[inline]
    pub fn zero(size: HashSize) -> Self {
        HashBits {
            nwords: size.words() as u8,
            words: [0; MAX_WORDS],
        }
    }

    /// Reconstructs from a word slice (as stored in the index).
    ///
    /// # Panics
    /// Panics if `words.len()` is not a valid [`HashSize`] word count.
    pub fn from_words(words: &[u64]) -> Self {
        assert!(
            matches!(words.len(), 2 | 4 | 8),
            "invalid word count {} for a hash array",
            words.len()
        );
        let mut w = [0u64; MAX_WORDS];
        w[..words.len()].copy_from_slice(words);
        HashBits {
            nwords: words.len() as u8,
            words: w,
        }
    }

    /// The array size.
    #[inline]
    pub fn size(&self) -> HashSize {
        match self.nwords {
            2 => HashSize::B128,
            4 => HashSize::B256,
            _ => HashSize::B512,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn nbits(&self) -> usize {
        self.nwords as usize * 64
    }

    /// The live words of the array.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words[..self.nwords as usize]
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Debug-panics if `i` is out of range.
    #[inline]
    pub fn set_bit(&mut self, i: usize) {
        debug_assert!(i < self.nbits());
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits());
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// OR-aggregates another hash result into `self` (super-key construction).
    ///
    /// # Panics
    /// Debug-panics on size mismatch.
    #[inline]
    pub fn or_assign(&mut self, other: &HashBits) {
        debug_assert_eq!(self.nwords, other.nwords);
        for i in 0..self.nwords as usize {
            self.words[i] |= other.words[i];
        }
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// True if no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// True if every set bit of `self` is also set in `superkey`
    /// (`self | superkey == superkey`), i.e. the row *may* contain this key.
    ///
    /// This is the row-filtering predicate of §6.3. The word-wise loop
    /// returns early on the first mismatching word; since word 0 holds the
    /// XASH length segment, a length mismatch aborts in the first iteration.
    #[inline]
    pub fn covered_by(&self, superkey: &[u64]) -> bool {
        covers(superkey, self.words())
    }

    /// Iterates the indices of set bits (for debugging/inspection).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nbits()).filter(move |&i| self.bit(i))
    }
}

impl std::fmt::Debug for HashBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HashBits<{}>{{", self.nbits())?;
        let ones: Vec<usize> = self.iter_ones().collect();
        write!(f, "{ones:?}}}")
    }
}

/// True if every set bit of `query` is also set in `superkey`.
///
/// Both slices must have the same length (debug-asserted). This is the
/// allocation-free form of [`HashBits::covered_by`] used when super keys are
/// read straight out of the index's flat word storage.
#[inline]
pub fn covers(superkey: &[u64], query: &[u64]) -> bool {
    debug_assert_eq!(superkey.len(), query.len());
    for (q, s) in query.iter().zip(superkey) {
        if q & !s != 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(HashSize::B128.bits(), 128);
        assert_eq!(HashSize::B128.words(), 2);
        assert_eq!(HashSize::B512.words(), 8);
        assert_eq!(HashSize::from_bits(256), Some(HashSize::B256));
        assert_eq!(HashSize::from_bits(100), None);
    }

    #[test]
    fn set_and_get_bits() {
        let mut b = HashBits::zero(HashSize::B128);
        assert!(b.is_zero());
        b.set_bit(0);
        b.set_bit(63);
        b.set_bit(64);
        b.set_bit(127);
        assert!(b.bit(0) && b.bit(63) && b.bit(64) && b.bit(127));
        assert!(!b.bit(1));
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 127]);
    }

    #[test]
    fn or_aggregation() {
        let mut a = HashBits::zero(HashSize::B128);
        a.set_bit(3);
        let mut b = HashBits::zero(HashSize::B128);
        b.set_bit(100);
        a.or_assign(&b);
        assert!(a.bit(3) && a.bit(100));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn containment() {
        let mut sk = HashBits::zero(HashSize::B128);
        sk.set_bit(3);
        sk.set_bit(100);
        sk.set_bit(40);

        let mut q = HashBits::zero(HashSize::B128);
        q.set_bit(3);
        q.set_bit(100);
        assert!(q.covered_by(sk.words()));

        q.set_bit(5);
        assert!(!q.covered_by(sk.words()));
    }

    #[test]
    fn zero_query_always_covered() {
        let q = HashBits::zero(HashSize::B256);
        let sk = HashBits::zero(HashSize::B256);
        assert!(q.covered_by(sk.words()));
    }

    #[test]
    fn from_words_roundtrip() {
        let mut b = HashBits::zero(HashSize::B512);
        b.set_bit(511);
        b.set_bit(0);
        let r = HashBits::from_words(b.words());
        assert_eq!(r, b);
        assert_eq!(r.size(), HashSize::B512);
    }

    #[test]
    #[should_panic(expected = "invalid word count")]
    fn from_words_rejects_bad_len() {
        HashBits::from_words(&[0u64; 3]);
    }

    #[test]
    fn covers_slice_form() {
        let sk = [0b1011u64, 0];
        assert!(covers(&sk, &[0b0011, 0]));
        assert!(!covers(&sk, &[0b0100, 0]));
        assert!(!covers(&sk, &[0, 1]));
    }

    #[test]
    fn display_size() {
        assert_eq!(HashSize::B256.to_string(), "256");
    }
}
