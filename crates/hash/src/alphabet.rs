//! The 37-character XASH alphabet.
//!
//! XASH segments its hash array by character: one segment per character of
//! the alphabet `{space, 0-9, a-z}` (37 characters, §5.3.2 of the paper).
//! Characters outside the alphabet contribute no character-segment bits —
//! they still count toward the value length.

/// Number of characters in the XASH alphabet.
pub const ALPHABET_SIZE: usize = 37;

/// Maps a character to its alphabet index: space → 0, '0'-'9' → 1-10,
/// 'a'-'z' → 11-36. Returns `None` for characters outside the alphabet.
#[inline]
pub fn char_index(c: char) -> Option<usize> {
    match c {
        ' ' => Some(0),
        '0'..='9' => Some(1 + (c as usize - '0' as usize)),
        'a'..='z' => Some(11 + (c as usize - 'a' as usize)),
        _ => None,
    }
}

/// Corpus-level character frequencies (per mille) for the 37-character
/// alphabet: space, digits, a–z. Letters follow English text statistics;
/// digits and space use typical web-table rates. Used by the global-rarity
/// character selection (§5.3.2's lemma ranks characters by their probability
/// of occurrence in the corpus).
pub const GLOBAL_FREQ: [u32; ALPHABET_SIZE] = [
    130, // space
    40, 35, 30, 25, 22, 20, 18, 16, 15, 14, // '0'-'9'
    82, 15, 28, 43, 127, 22, 20, 61, 70, 2, 8, 40, 24, 67, 75, 19, 1, 60, 63, 91, 28, 10, 24, 2,
    20, 1, // 'a'-'z'
];

/// Inverse of [`char_index`] (for debugging/tests).
#[inline]
pub fn index_char(i: usize) -> Option<char> {
    match i {
        0 => Some(' '),
        1..=10 => Some((b'0' + (i as u8 - 1)) as char),
        11..=36 => Some((b'a' + (i as u8 - 11)) as char),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping() {
        assert_eq!(char_index(' '), Some(0));
        assert_eq!(char_index('0'), Some(1));
        assert_eq!(char_index('9'), Some(10));
        assert_eq!(char_index('a'), Some(11));
        assert_eq!(char_index('z'), Some(36));
        assert_eq!(char_index('A'), None); // values are normalized to lowercase
        assert_eq!(char_index('-'), None);
        assert_eq!(char_index('ä'), None);
    }

    #[test]
    fn roundtrip() {
        for i in 0..ALPHABET_SIZE {
            let c = index_char(i).unwrap();
            assert_eq!(char_index(c), Some(i));
        }
        assert_eq!(index_char(37), None);
    }
}
