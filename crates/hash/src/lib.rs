//! Hash functions for MATE super keys.
//!
//! The paper's filtering layer aggregates per-cell hash results into a
//! per-row **super key** with bitwise OR, then tests composite-key membership
//! with a single containment check (`query & !superkey == 0`). The quality of
//! that filter depends entirely on the *shape* of the per-value hash: it must
//! set **few** bits (a digest-style hash sets ~50% of its bits and saturates
//! the super key after a handful of cells) and different values should set
//! **different** bits.
//!
//! This crate provides:
//!
//! * [`Xash`] — the paper's contribution (§5): encodes the least-frequent
//!   characters of a value, their relative positions, and the value length
//!   into `alpha` bits of a 128/256/512-bit array, with segment rotation to
//!   suppress cross-column random matches. [`XashVariant`] exposes the
//!   ablation variants of Figure 5.
//! * Baselines from §7.1.2: [`HashTableHasher`] (one bit),
//!   [`BloomFilterHasher`] (k independent Murmur3 hashes),
//!   [`LessHashBloomFilter`] (Kirsch–Mitzenmacher double hashing),
//!   and digest-style hashers [`Md5Hasher`], [`MurmurHasher`],
//!   [`CityHasher`], [`SimHashHasher`].
//! * The raw hash primitives implemented from scratch ([`md5`], [`murmur3`],
//!   [`city`]) — the environment is offline and these are required baselines.
//! * [`bits::HashBits`] — the fixed-size bit-array value type, plus the
//!   containment predicate used by row filtering.
//! * [`fx`] — a fast FxHash-style hasher for hot-path hash maps.
//!
//! All hashers implement [`RowHasher`], the interface the index builder and
//! the discovery engine are generic over.

#![warn(missing_docs)]

pub mod alphabet;
pub mod bits;
pub mod bloom;
pub mod city;
pub mod digest_hashers;
pub mod fx;
pub mod md5;
pub mod murmur3;
pub mod simhash;
pub mod traits;
pub mod xash;

pub use bits::{covers, HashBits, HashSize};
pub use bloom::{BloomFilterHasher, HashTableHasher, LessHashBloomFilter};
pub use digest_hashers::{CityHasher, Md5Hasher, MurmurHasher};
pub use simhash::SimHashHasher;
pub use traits::{superkey_dyn, RowHasher};
pub use xash::{optimal_alpha, CharSelect, Xash, XashConfig, XashVariant};
