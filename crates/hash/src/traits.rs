//! The [`RowHasher`] interface.
//!
//! Everything downstream — the index builder, the super-key generator, the
//! discovery engine, and the benchmark harness — is generic over this trait,
//! so swapping XASH for a baseline hash (Tables 2–3 of the paper) is a
//! one-line change.

use crate::bits::{HashBits, HashSize};

/// A hash function that maps one cell value to a bit pattern suitable for
/// OR-aggregation into a super key.
pub trait RowHasher: Send + Sync {
    /// The size of the produced bit arrays.
    fn hash_size(&self) -> HashSize;

    /// Hashes a single normalized cell value.
    ///
    /// Must be deterministic. Empty values must hash to the zero array (they
    /// carry no join information and must not pollute the super key).
    fn hash_value(&self, value: &str) -> HashBits;

    /// Short name for reports ("XASH", "BF", "MD5", ...).
    fn name(&self) -> &'static str;

    /// OR-aggregates the hashes of all values of a row into a super key.
    fn superkey<'a>(&self, row_values: impl Iterator<Item = &'a str>) -> HashBits
    where
        Self: Sized,
    {
        let mut sk = HashBits::zero(self.hash_size());
        for v in row_values {
            sk.or_assign(&self.hash_value(v));
        }
        sk
    }
}

/// Object-safe helper so heterogeneous hasher collections (the bench harness
/// iterates over all baselines) can build super keys too.
pub fn superkey_dyn(hasher: &dyn RowHasher, row_values: &[&str]) -> HashBits {
    let mut sk = HashBits::zero(hasher.hash_size());
    for v in row_values {
        sk.or_assign(&hasher.hash_value(v));
    }
    sk
}

impl<T: RowHasher + ?Sized> RowHasher for &T {
    fn hash_size(&self) -> HashSize {
        (**self).hash_size()
    }
    fn hash_value(&self, value: &str) -> HashBits {
        (**self).hash_value(value)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: RowHasher + ?Sized> RowHasher for Box<T> {
    fn hash_size(&self) -> HashSize {
        (**self).hash_size()
    }
    fn hash_value(&self, value: &str) -> HashBits {
        (**self).hash_value(value)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneBit;
    impl RowHasher for OneBit {
        fn hash_size(&self) -> HashSize {
            HashSize::B128
        }
        fn hash_value(&self, value: &str) -> HashBits {
            let mut b = HashBits::zero(HashSize::B128);
            if !value.is_empty() {
                b.set_bit(value.len() % 128);
            }
            b
        }
        fn name(&self) -> &'static str {
            "onebit"
        }
    }

    #[test]
    fn superkey_aggregates() {
        let h = OneBit;
        let sk = h.superkey(["a", "bb", "ccc"].into_iter());
        assert!(sk.bit(1) && sk.bit(2) && sk.bit(3));
        assert_eq!(sk.count_ones(), 3);
    }

    #[test]
    fn superkey_dyn_matches() {
        let h = OneBit;
        let a = h.superkey(["a", "bb"].into_iter());
        let b = superkey_dyn(&h, &["a", "bb"]);
        assert_eq!(a, b);
    }

    #[test]
    fn ref_and_box_impls() {
        let h = OneBit;
        let r: &dyn RowHasher = &h;
        assert_eq!(r.name(), "onebit");
        let b: Box<dyn RowHasher> = Box::new(OneBit);
        assert_eq!(b.hash_size(), HashSize::B128);
        assert_eq!(b.hash_value("xy").count_ones(), 1);
    }
}
