//! XASH — the syntax-aware hash function of the MATE paper (§5).
//!
//! XASH encodes three syntactic features of a cell value into a sparse,
//! fixed-size bit array:
//!
//! 1. **Least-frequent characters** (§5.3.2): the hash array is divided into
//!    37 character segments of β bits (one per alphabet character, where
//!    β = max{β : 37·β < |a|}); for the α−1 characters of the value with the
//!    lowest in-value frequency (ties broken lexicographically), one bit of
//!    the character's segment is set.
//! 2. **Character location** (§5.3.3): which of the β segment bits is set
//!    encodes the character's relative position: `x = ⌈λ·β / l_v⌉` where λ is
//!    the mean 1-based position of the character and `l_v` the value length.
//! 3. **Value length** (§5.3.4): the remaining `|a| − 37β` bits form the
//!    length segment; bit `l_v mod |a_l|` is set. The length segment occupies
//!    the **lowest-order word** of the array, so the word-wise containment
//!    loop rejects rows with incompatible lengths in its first iteration —
//!    the paper's short-circuit optimization.
//! 4. **Rotation** (§5.3.5): the character-segment region is rotated by
//!    `l_v` positions, so that two values can only produce overlapping
//!    character bits if they *also* agree on length — suppressing "random
//!    matches" across columns.
//!
//! The number of set bits per hash is bounded by α, computed from the corpus
//! unique-value count via Eq. 5 ([`optimal_alpha`]). The default α = 6
//! (1 length bit + 5 character bits) matches the paper's DWTC setting.
//!
//! [`XashVariant`] selects feature subsets for the ablation study (Fig. 5).

use crate::alphabet::{char_index, ALPHABET_SIZE};
use crate::bits::{HashBits, HashSize};
use crate::traits::RowHasher;

/// Which XASH features are active — the ablation axis of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum XashVariant {
    /// Length bit only ("Length" bar in Fig. 5).
    LengthOnly,
    /// Rare characters only, no position encoding (first segment bit), no
    /// length, no rotation ("Rare characters").
    RareChars,
    /// Rare characters with position encoding; no length, no rotation
    /// ("Char. + loc.").
    CharLocation,
    /// Characters + position + length, but **no rotation**
    /// ("Char. + len. + loc.").
    NoRotation,
    /// Full XASH: characters + position + length + rotation.
    #[default]
    Full,
}

impl XashVariant {
    /// Human-readable label used by the benchmark reports.
    pub fn label(self) -> &'static str {
        match self {
            XashVariant::LengthOnly => "Length",
            XashVariant::RareChars => "Rare characters",
            XashVariant::CharLocation => "Char. + loc.",
            XashVariant::NoRotation => "Char. + len. + loc.",
            XashVariant::Full => "Xash",
        }
    }

    fn uses_length(self) -> bool {
        matches!(
            self,
            XashVariant::LengthOnly | XashVariant::NoRotation | XashVariant::Full
        )
    }

    fn uses_chars(self) -> bool {
        !matches!(self, XashVariant::LengthOnly)
    }

    fn uses_location(self) -> bool {
        matches!(
            self,
            XashVariant::CharLocation | XashVariant::NoRotation | XashVariant::Full
        )
    }

    fn uses_rotation(self) -> bool {
        matches!(self, XashVariant::Full)
    }
}

/// How the α−1 characters of a value are chosen (§5.3.2).
///
/// The paper's lemma ranks characters by their *probability of occurrence*:
/// globally rare characters collide least. The reference implementation
/// breaks the (very common) all-count-1 tie lexicographically, which skews
/// selection toward early-alphabet — i.e. common — letters; ranking by the
/// corpus-level character frequency instead follows the lemma directly and
/// measurably reduces false positives (see the `fig5` ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CharSelect {
    /// Rank by corpus-level character rarity (the lemma's criterion);
    /// ties broken by in-value count, then alphabet order.
    #[default]
    GlobalRarity,
    /// Rank by in-value occurrence count with lexicographic tie-break
    /// (the reference implementation's behaviour).
    InValueFrequency,
}

/// Geometry + feature configuration of a XASH instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XashConfig {
    /// Hash array size.
    pub size: HashSize,
    /// Total number of 1-bits per hash (1 length bit + α−1 character bits).
    pub alpha: usize,
    /// Active feature subset.
    pub variant: XashVariant,
    /// Character ranking strategy.
    pub char_select: CharSelect,
}

impl XashConfig {
    /// The paper's default configuration: 128 bits, α = 6, all features.
    pub fn default_128() -> Self {
        XashConfig {
            size: HashSize::B128,
            alpha: 6,
            variant: XashVariant::Full,
            char_select: CharSelect::GlobalRarity,
        }
    }

    /// Bits per character segment: β = max{β : 37β < |a|} (Eq. 6).
    #[inline]
    pub fn beta(&self) -> usize {
        (self.size.bits() - 1) / ALPHABET_SIZE
    }

    /// Width of the character region in bits (37·β).
    #[inline]
    pub fn char_region_bits(&self) -> usize {
        ALPHABET_SIZE * self.beta()
    }

    /// Width of the length segment in bits: |a_l| = |a| − 37β.
    #[inline]
    pub fn length_segment_bits(&self) -> usize {
        self.size.bits() - self.char_region_bits()
    }

    /// Number of character bits per hash (α − 1 when the length feature is
    /// active, α otherwise).
    #[inline]
    pub fn chars_to_select(&self) -> usize {
        if self.variant.uses_length() {
            self.alpha.saturating_sub(1)
        } else {
            self.alpha
        }
    }
}

/// Computes the optimal number of 1-bits α per Eq. 5:
/// the minimal α with `C(|a|, α) > unique_values`.
///
/// For a 128-bit space and the paper's 700M unique DWTC values this yields 6.
///
/// ```
/// use mate_hash::{optimal_alpha, HashSize};
/// assert_eq!(optimal_alpha(HashSize::B128, 700_000_000), 6);
/// ```
pub fn optimal_alpha(size: HashSize, unique_values: usize) -> usize {
    let n = size.bits() as u128;
    let target = unique_values as u128;
    let mut binom: u128 = 1;
    for alpha in 1..=size.bits() {
        // binom = C(n, alpha) built incrementally; saturate to avoid overflow.
        binom = binom.saturating_mul(n - alpha as u128 + 1) / alpha as u128;
        if binom > target {
            // Reserve at least 2 bits (1 length + 1 char) to be meaningful.
            return alpha.max(2);
        }
    }
    size.bits()
}

/// The XASH hash function (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Xash {
    config: XashConfig,
}

impl Xash {
    /// Creates a full-featured XASH with the paper's default α = 6.
    pub fn new(size: HashSize) -> Self {
        Xash {
            config: XashConfig {
                size,
                alpha: 6,
                variant: XashVariant::Full,
                char_select: CharSelect::default(),
            },
        }
    }

    /// Creates a XASH from an explicit configuration.
    pub fn with_config(config: XashConfig) -> Self {
        assert!(
            config.alpha >= 2,
            "alpha must be at least 2 (length + one char)"
        );
        Xash { config }
    }

    /// Creates a XASH sized for a corpus: α from Eq. 5 given the corpus
    /// unique-value count.
    pub fn for_corpus(size: HashSize, unique_values: usize) -> Self {
        Xash::with_config(XashConfig {
            size,
            alpha: optimal_alpha(size, unique_values),
            variant: XashVariant::Full,
            char_select: CharSelect::default(),
        })
    }

    /// Creates an ablation variant (Fig. 5) with the default α = 6.
    pub fn variant(size: HashSize, variant: XashVariant) -> Self {
        Xash {
            config: XashConfig {
                size,
                alpha: 6,
                variant,
                char_select: CharSelect::default(),
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &XashConfig {
        &self.config
    }

    /// Selects the `k` least frequent alphabet characters of `value`
    /// (§5.3.2), returning `(alphabet_index, mean 1-based position)` pairs.
    ///
    /// Ranking depends on [`CharSelect`]: global character rarity (the
    /// lemma's criterion) or in-value occurrence counts (the reference
    /// implementation).
    fn select_chars(value: &str, k: usize, strategy: CharSelect) -> Vec<(usize, f64)> {
        // Per-alphabet-char occurrence count and position sum.
        let mut count = [0u32; ALPHABET_SIZE];
        let mut pos_sum = [0u64; ALPHABET_SIZE];
        for (i, ch) in value.chars().enumerate() {
            if let Some(ci) = char_index(ch) {
                count[ci] += 1;
                pos_sum[ci] += (i + 1) as u64;
            }
        }
        let mut present: Vec<usize> = (0..ALPHABET_SIZE).filter(|&ci| count[ci] > 0).collect();
        match strategy {
            CharSelect::GlobalRarity => {
                present.sort_by_key(|&ci| (crate::alphabet::GLOBAL_FREQ[ci], count[ci], ci));
            }
            CharSelect::InValueFrequency => {
                present.sort_by_key(|&ci| (count[ci], ci));
            }
        }
        present
            .into_iter()
            .take(k)
            .map(|ci| (ci, pos_sum[ci] as f64 / count[ci] as f64))
            .collect()
    }
}

impl RowHasher for Xash {
    fn hash_size(&self) -> HashSize {
        self.config.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        let mut out = HashBits::zero(self.config.size);
        if value.is_empty() {
            return out;
        }
        let beta = self.config.beta();
        let len_bits = self.config.length_segment_bits();
        let char_bits = self.config.char_region_bits();
        let lv = value.chars().count();
        let variant = self.config.variant;

        if variant.uses_length() {
            out.set_bit(lv % len_bits);
        }

        if variant.uses_chars() {
            let rot = if variant.uses_rotation() {
                lv % char_bits
            } else {
                0
            };
            for (ci, mean_pos) in Xash::select_chars(
                value,
                self.config.chars_to_select(),
                self.config.char_select,
            ) {
                // Position bit within the segment: x = ceil(λ·β / l_v) ∈ [1, β].
                let x = if variant.uses_location() {
                    ((mean_pos * beta as f64 / lv as f64).ceil() as usize).clamp(1, beta)
                } else {
                    1
                };
                let char_pos = ci * beta + (x - 1);
                // Rotation applied at placement time; the character region
                // starts right after the length segment.
                out.set_bit(len_bits + (char_pos + rot) % char_bits);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        match self.config.variant {
            XashVariant::Full => "Xash",
            XashVariant::NoRotation => "Char+len+loc",
            XashVariant::CharLocation => "Char+loc",
            XashVariant::RareChars => "RareChars",
            XashVariant::LengthOnly => "Length",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        // §5.3.2: 128 bits → β = 3, length segment 17 bits;
        // 512 bits → |a_l| = 31.
        let c128 = XashConfig::default_128();
        assert_eq!(c128.beta(), 3);
        assert_eq!(c128.length_segment_bits(), 17);
        let c256 = XashConfig {
            size: HashSize::B256,
            ..c128
        };
        assert_eq!(c256.beta(), 6);
        assert_eq!(c256.length_segment_bits(), 256 - 37 * 6);
        let c512 = XashConfig {
            size: HashSize::B512,
            ..c128
        };
        assert_eq!(c512.beta(), 13);
        assert_eq!(c512.length_segment_bits(), 31);
    }

    #[test]
    fn alpha_matches_paper() {
        // §5.3.1: 128-bit space, 700M unique values → α = 6.
        assert_eq!(optimal_alpha(HashSize::B128, 700_000_000), 6);
        // Small corpora need fewer bits but never fewer than 2.
        assert_eq!(optimal_alpha(HashSize::B128, 0), 2);
        assert!(optimal_alpha(HashSize::B512, 700_000_000) <= 6);
    }

    #[test]
    fn at_most_alpha_ones() {
        let x = Xash::new(HashSize::B128);
        for v in [
            "muhammad",
            "lee",
            "us",
            "a",
            "new york city",
            "1234567890",
            "x y z",
        ] {
            let h = x.hash_value(v);
            assert!(h.count_ones() as usize <= 6, "{v}: {} ones", h.count_ones());
            assert!(h.count_ones() >= 2, "{v} should set length + ≥1 char bit");
        }
    }

    #[test]
    fn empty_value_hashes_to_zero() {
        let x = Xash::new(HashSize::B128);
        assert!(x.hash_value("").is_zero());
    }

    #[test]
    fn deterministic() {
        let x = Xash::new(HashSize::B256);
        assert_eq!(x.hash_value("hello world"), x.hash_value("hello world"));
    }

    #[test]
    fn length_bit_in_low_word() {
        // The length segment must be checkable first (short-circuit, §5.3.4):
        // it occupies bits [0, |a_l|) which live in word 0.
        let x = Xash::new(HashSize::B128);
        let h = x.hash_value("abc");
        let len_bit = 3; // l_v = 3 mod |a_l| = 17
        assert!(
            h.bit(len_bit),
            "length bit for l_v=3 must be set at index {len_bit}"
        );
    }

    #[test]
    fn length_wraps_modulo_segment() {
        let x = Xash::new(HashSize::B128);
        // l_v = 20 → bit 20 mod 17 = 3; same length bit as l_v = 3.
        let long = x.hash_value("aaaaaaaaaaaaaaaaaaaa");
        assert!(long.bit(3));
    }

    #[test]
    fn select_chars_prefers_rare() {
        // "aab": 'b' (1x) is rarer than 'a' (2x).
        let sel = Xash::select_chars("aab", 1, CharSelect::InValueFrequency);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].0, char_index_of('b'));
    }

    #[test]
    fn select_chars_tie_breaks_lexicographically() {
        let sel = Xash::select_chars("ba", 1, CharSelect::InValueFrequency);
        assert_eq!(sel[0].0, char_index_of('a'));
    }

    #[test]
    fn global_rarity_prefers_rare_letters() {
        // "queen" holds 'q' (rarest letter) — global rarity must select it
        // first; in-value frequency would rank 'e' (count 2) last but break
        // the count-1 tie alphabetically as (n, q, u).
        let sel = Xash::select_chars("queen", 2, CharSelect::GlobalRarity);
        assert_eq!(sel[0].0, char_index_of('q'));
        let sel_iv = Xash::select_chars("queen", 2, CharSelect::InValueFrequency);
        assert_eq!(sel_iv[0].0, char_index_of('n'));
    }

    #[test]
    fn select_chars_mean_position() {
        // "abca": 'a' at 1-based positions 1 and 4 → mean 2.5.
        let sel = Xash::select_chars("abca", 3, CharSelect::InValueFrequency);
        let a = sel
            .iter()
            .find(|(ci, _)| *ci == char_index_of('a'))
            .unwrap();
        assert!((a.1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn non_alphabet_chars_count_only_toward_length() {
        let x = Xash::new(HashSize::B128);
        let h = x.hash_value("---");
        // No alphabet characters → only the length bit is set.
        assert_eq!(h.count_ones(), 1);
        assert!(h.bit(3)); // l_v = 3 mod 17
    }

    #[test]
    fn paper_example_position_encoding() {
        // §5.3.3: "muhammad" (l_v = 8, β = 3): 'u' mean pos ~2 → first area,
        // 'd' pos 8 → third area, 'h' pos 3 → second area.
        let lv = 8.0;
        let beta = 3.0;
        let area = |lambda: f64| ((lambda * beta / lv).ceil() as usize).clamp(1, 3);
        assert_eq!(area(2.0), 1);
        assert_eq!(area(3.0), 2);
        assert_eq!(area(8.0), 3);
    }

    #[test]
    fn rotation_distinguishes_cross_column_values() {
        // Two values sharing rare chars at the same relative positions but
        // with different lengths must produce different character-bit sets
        // when rotation is on.
        let full = Xash::new(HashSize::B128);
        let no_rot = Xash::variant(HashSize::B128, XashVariant::NoRotation);

        // "xq" and "xqxq": same rare chars, same relative layout.
        let (a_full, b_full) = (full.hash_value("xq"), full.hash_value("xqxq"));
        let (a_nr, b_nr) = (no_rot.hash_value("xq"), no_rot.hash_value("xqxq"));

        // Without rotation the char regions overlap heavily; with rotation
        // the regions diverge (offset by the length difference).
        let overlap =
            |x: &HashBits, y: &HashBits| x.iter_ones().filter(|&i| i >= 17 && y.bit(i)).count();
        assert!(overlap(&a_full, &b_full) < overlap(&a_nr, &b_nr) || overlap(&a_nr, &b_nr) > 0);
    }

    #[test]
    fn variants_feature_matrix() {
        let v = "hello world";
        let len_only = Xash::variant(HashSize::B128, XashVariant::LengthOnly).hash_value(v);
        assert_eq!(len_only.count_ones(), 1);

        let rare = Xash::variant(HashSize::B128, XashVariant::RareChars).hash_value(v);
        // No length bit: all ones must lie in the char region [17, 128).
        assert!(rare.iter_ones().all(|i| i >= 17));
        // Position encoding off → every char sets the first bit of its segment.
        for i in rare.iter_ones() {
            assert_eq!((i - 17) % 3, 0);
        }

        let char_loc = Xash::variant(HashSize::B128, XashVariant::CharLocation).hash_value(v);
        assert!(char_loc.iter_ones().all(|i| i >= 17));

        let no_rot = Xash::variant(HashSize::B128, XashVariant::NoRotation).hash_value(v);
        let full = Xash::variant(HashSize::B128, XashVariant::Full).hash_value(v);
        assert_eq!(no_rot.count_ones(), full.count_ones());
    }

    #[test]
    fn short_values_still_hash() {
        let x = Xash::new(HashSize::B128);
        let h = x.hash_value("a");
        assert_eq!(h.count_ones(), 2); // length bit + one char bit
    }

    #[test]
    fn for_corpus_uses_eq5() {
        let x = Xash::for_corpus(HashSize::B128, 1_000_000);
        assert_eq!(x.config().alpha, optimal_alpha(HashSize::B128, 1_000_000));
    }

    #[test]
    #[should_panic(expected = "alpha must be at least 2")]
    fn rejects_tiny_alpha() {
        Xash::with_config(XashConfig {
            alpha: 1,
            ..XashConfig::default_128()
        });
    }

    fn char_index_of(c: char) -> usize {
        crate::alphabet::char_index(c).unwrap()
    }
}
