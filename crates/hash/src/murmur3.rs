//! MurmurHash3 x64 128-bit, implemented from scratch.
//!
//! Murmur3 is (a) a baseline digest hasher in Tables 2–3, and (b) the base
//! hash family of the Bloom-filter super keys (§7.1.2: "We use Murmur3 hash
//! family as the base function in the BF implementation").

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

/// Computes the 128-bit MurmurHash3 (x64 variant) of `data` with `seed`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> [u64; 2] {
    const C1: u64 = 0x87c37b91114253d5;
    const C2: u64 = 0x4cf5ad432745937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let nblocks = data.len() / 16;

    for i in 0..nblocks {
        let k1 = u64::from_le_bytes(data[i * 16..i * 16 + 8].try_into().unwrap());
        let k2 = u64::from_le_bytes(data[i * 16 + 8..i * 16 + 16].try_into().unwrap());

        let k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dce729);

        let k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x38495ab5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for i in (0..tail.len()).rev() {
        match i {
            15 => k2 ^= (tail[15] as u64) << 56,
            14 => k2 ^= (tail[14] as u64) << 48,
            13 => k2 ^= (tail[13] as u64) << 40,
            12 => k2 ^= (tail[12] as u64) << 32,
            11 => k2 ^= (tail[11] as u64) << 24,
            10 => k2 ^= (tail[10] as u64) << 16,
            9 => k2 ^= (tail[9] as u64) << 8,
            8 => k2 ^= tail[8] as u64,
            7 => k1 ^= (tail[7] as u64) << 56,
            6 => k1 ^= (tail[6] as u64) << 48,
            5 => k1 ^= (tail[5] as u64) << 40,
            4 => k1 ^= (tail[4] as u64) << 32,
            3 => k1 ^= (tail[3] as u64) << 24,
            2 => k1 ^= (tail[2] as u64) << 16,
            1 => k1 ^= (tail[1] as u64) << 8,
            0 => k1 ^= tail[0] as u64,
            _ => unreachable!(),
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    [h1, h2]
}

/// 64-bit convenience form (first word of the 128-bit hash).
#[inline]
pub fn murmur3_64(data: &[u8], seed: u64) -> u64 {
    murmur3_x64_128(data, seed)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: [u64; 2]) -> String {
        // Canonical output prints the two words as big-endian hex of their
        // little-endian byte serialization.
        let mut s = String::new();
        for w in h {
            for b in w.to_le_bytes() {
                s.push_str(&format!("{b:02x}"));
            }
        }
        s
    }

    // Reference vectors computed with the canonical C++ implementation
    // (MurmurHash3_x64_128) / Python `mmh3` library.
    #[test]
    fn known_vectors_seed0() {
        assert_eq!(
            hex(murmur3_x64_128(b"", 0)),
            "00000000000000000000000000000000"
        );
        assert_eq!(
            hex(murmur3_x64_128(b"hello", 0)),
            "029bbd41b3a7d8cb191dae486a901e5b"
        );
        assert_eq!(
            hex(murmur3_x64_128(b"hello, world", 0)),
            "8ebc5e3a62ac2f344d41429607bcdc4c"
        );
        assert_eq!(
            hex(murmur3_x64_128(
                b"The quick brown fox jumps over the lazy dog.",
                0
            )),
            "c902e99e1f4899cde7b68789a3a15d69"
        );
    }

    #[test]
    fn seed_changes_output() {
        let a = murmur3_x64_128(b"value", 0);
        let b = murmur3_x64_128(b"value", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        for s in ["", "a", "0123456789abcdef", "0123456789abcdef0"] {
            assert_eq!(
                murmur3_x64_128(s.as_bytes(), 42),
                murmur3_x64_128(s.as_bytes(), 42)
            );
        }
    }

    #[test]
    fn tail_lengths_all_covered() {
        // Exercise every tail length 0..=15 around the 16-byte block boundary.
        let base = b"abcdefghijklmnopqrstuvwxyz012345";
        let mut seen = std::collections::HashSet::new();
        for len in 0..=31 {
            assert!(seen.insert(murmur3_x64_128(&base[..len], 7)));
        }
    }

    #[test]
    fn murmur3_64_is_first_word() {
        assert_eq!(murmur3_64(b"xyz", 9), murmur3_x64_128(b"xyz", 9)[0]);
    }
}
