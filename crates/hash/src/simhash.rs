//! SimHash (Charikar 2002) baseline hasher.
//!
//! SimHash produces similarity-preserving fingerprints: each feature (here:
//! character 3-grams, falling back to single characters for short values)
//! votes +1/−1 per output bit via its Murmur3 hash, and the sign of the
//! tally determines the bit. Like the digest hashers it yields ~50% bit
//! density — listed in Tables 2–3 to show that similarity preservation does
//! not help super-key filtering either.

use crate::bits::{HashBits, HashSize};
use crate::murmur3::murmur3_x64_128;
use crate::traits::RowHasher;

/// SimHash over character n-grams.
#[derive(Debug, Clone, Copy)]
pub struct SimHashHasher {
    size: HashSize,
    ngram: usize,
}

impl SimHashHasher {
    /// Creates a SimHash hasher with the default 3-gram features.
    pub fn new(size: HashSize) -> Self {
        SimHashHasher { size, ngram: 3 }
    }

    /// Creates a SimHash hasher with custom n-gram width (≥ 1).
    pub fn with_ngram(size: HashSize, ngram: usize) -> Self {
        assert!(ngram >= 1, "ngram width must be at least 1");
        SimHashHasher { size, ngram }
    }

    fn features<'a>(&self, value: &'a str) -> Vec<&'a [u8]> {
        let bytes = value.as_bytes();
        if bytes.len() < self.ngram {
            // Short value: single bytes as features.
            return (0..bytes.len()).map(|i| &bytes[i..i + 1]).collect();
        }
        (0..=bytes.len() - self.ngram)
            .map(|i| &bytes[i..i + self.ngram])
            .collect()
    }
}

impl RowHasher for SimHashHasher {
    fn hash_size(&self) -> HashSize {
        self.size
    }

    fn hash_value(&self, value: &str) -> HashBits {
        let mut out = HashBits::zero(self.size);
        if value.is_empty() {
            return out;
        }
        let nbits = self.size.bits();
        let mut tally = vec![0i32; nbits];
        for feat in self.features(value) {
            // Each word of the feature hash contributes 64 vote bits;
            // reseed per 128-bit block to cover larger arrays.
            for block in 0..self.size.words() / 2 {
                let h = murmur3_x64_128(feat, block as u64);
                for (wi, w) in h.iter().enumerate() {
                    for b in 0..64 {
                        let idx = block * 128 + wi * 64 + b;
                        if w & (1u64 << b) != 0 {
                            tally[idx] += 1;
                        } else {
                            tally[idx] -= 1;
                        }
                    }
                }
            }
        }
        for (i, t) in tally.iter().enumerate() {
            if *t > 0 {
                out.set_bit(i);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "SimHash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming(a: &HashBits, b: &HashBits) -> u32 {
        a.words()
            .iter()
            .zip(b.words())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum()
    }

    #[test]
    fn similar_values_have_close_fingerprints() {
        let h = SimHashHasher::new(HashSize::B128);
        let a = h.hash_value("the quick brown fox jumps over the lazy dog");
        let b = h.hash_value("the quick brown fox jumps over the lazy cat");
        let c = h.hash_value("completely unrelated text 12345 here");
        assert!(
            hamming(&a, &b) < hamming(&a, &c),
            "similar pair {} should beat dissimilar pair {}",
            hamming(&a, &b),
            hamming(&a, &c)
        );
    }

    #[test]
    fn density_near_half() {
        let h = SimHashHasher::new(HashSize::B128);
        let mut total = 0;
        for i in 0..40 {
            total += h.hash_value(&format!("cell value number {i}")).count_ones();
        }
        let avg = total as f64 / 40.0;
        assert!((40.0..=88.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn short_values_fall_back_to_chars() {
        let h = SimHashHasher::new(HashSize::B128);
        let a = h.hash_value("ab");
        assert!(!a.is_zero());
        assert_eq!(a, h.hash_value("ab"));
    }

    #[test]
    fn empty_is_zero() {
        assert!(SimHashHasher::new(HashSize::B512).hash_value("").is_zero());
    }

    #[test]
    fn all_sizes_work() {
        for size in HashSize::ALL {
            let h = SimHashHasher::new(size).hash_value("hello world");
            assert_eq!(h.size(), size);
        }
    }

    #[test]
    #[should_panic(expected = "ngram width")]
    fn rejects_zero_ngram() {
        SimHashHasher::with_ngram(HashSize::B128, 0);
    }
}
