//! Property tests for XASH's structural guarantees.

use mate_hash::{optimal_alpha, CharSelect, HashSize, RowHasher, Xash, XashConfig, XashVariant};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = String> {
    // Normalized-shaped values: lowercase alphanumerics and spaces.
    "[a-z0-9 ]{0,30}".prop_map(|s| mate_table::normalize(&s))
}

proptest! {
    /// The defining sparsity bound: at most alpha bits set, and at least one
    /// (the length bit) for non-empty values.
    #[test]
    fn ones_bounded_by_alpha(v in value_strategy(), alpha in 2usize..10) {
        for size in [HashSize::B128, HashSize::B256, HashSize::B512] {
            let x = Xash::with_config(XashConfig {
                size,
                alpha,
                variant: XashVariant::Full,
                char_select: CharSelect::GlobalRarity,
            });
            let h = x.hash_value(&v);
            prop_assert!((h.count_ones() as usize) <= alpha);
            if !v.is_empty() {
                prop_assert!(h.count_ones() >= 1);
            } else {
                prop_assert!(h.is_zero());
            }
        }
    }

    /// Hashing is a pure function of the value.
    #[test]
    fn deterministic(v in value_strategy()) {
        let x = Xash::new(HashSize::B128);
        prop_assert_eq!(x.hash_value(&v), x.hash_value(&v));
    }

    /// The length bit always lands inside the length segment (the low word),
    /// for every variant that uses the length feature.
    #[test]
    fn length_bit_in_segment(v in value_strategy()) {
        prop_assume!(!v.is_empty());
        let x = Xash::variant(HashSize::B128, XashVariant::LengthOnly);
        let h = x.hash_value(&v);
        let len_seg = x.config().length_segment_bits();
        prop_assert_eq!(h.count_ones(), 1);
        let bit = h.iter_ones().next().unwrap();
        prop_assert!(bit < len_seg, "length bit {bit} outside segment {len_seg}");
        prop_assert_eq!(bit, v.chars().count() % len_seg);
    }

    /// Character bits always land inside the character region, for variants
    /// without the length feature.
    #[test]
    fn char_bits_in_region(v in value_strategy()) {
        let x = Xash::variant(HashSize::B128, XashVariant::CharLocation);
        let h = x.hash_value(&v);
        let len_seg = 17;
        for bit in h.iter_ones() {
            prop_assert!(bit >= len_seg, "char bit {bit} inside length segment");
        }
    }

    /// Full XASH == NoRotation with the char region rotated by l_v: the two
    /// variants must set the same *number* of bits.
    #[test]
    fn rotation_preserves_bit_count(v in value_strategy()) {
        let full = Xash::variant(HashSize::B128, XashVariant::Full).hash_value(&v);
        let no_rot = Xash::variant(HashSize::B128, XashVariant::NoRotation).hash_value(&v);
        prop_assert_eq!(full.count_ones(), no_rot.count_ones());
    }

    /// Values equal up to trailing content of the same alphabet produce
    /// different hashes *almost* always when lengths differ (rotation +
    /// length bit). We assert the weaker guaranteed form: if lengths differ
    /// mod |a_l| the hashes differ.
    #[test]
    fn different_length_classes_differ(v in "[a-z]{1,10}") {
        let x = Xash::new(HashSize::B128);
        let longer = format!("{v}x");
        // lengths differ by 1 < 17 → different length bits → different hash.
        prop_assert_ne!(x.hash_value(&v), x.hash_value(&longer));
    }

    /// Superkey containment is monotone: adding values to a row never makes
    /// a previously covered key uncovered.
    #[test]
    fn containment_monotone(
        row in proptest::collection::vec(value_strategy(), 1..6),
        extra in value_strategy(),
        key_idx in 0usize..6,
    ) {
        let x = Xash::new(HashSize::B128);
        let key = &row[key_idx % row.len()];
        let key_hash = x.hash_value(key);

        let sk_small = x.superkey(row.iter().map(String::as_str));
        let mut with_extra: Vec<&str> = row.iter().map(String::as_str).collect();
        with_extra.push(&extra);
        let sk_big = x.superkey(with_extra.into_iter());

        prop_assert!(key_hash.covered_by(sk_small.words()));
        prop_assert!(key_hash.covered_by(sk_big.words()));
    }

    /// Eq. 5 is monotone in the corpus size and bounded by the bit width.
    #[test]
    fn alpha_monotone(n in 1usize..1_000_000_000) {
        let a = optimal_alpha(HashSize::B128, n);
        let b = optimal_alpha(HashSize::B128, n.saturating_mul(10));
        prop_assert!(a <= b);
        prop_assert!((2..=128).contains(&a));
        // Larger hash space needs fewer bits for the same corpus.
        prop_assert!(optimal_alpha(HashSize::B512, n) <= a);
    }
}
