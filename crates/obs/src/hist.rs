//! Log-bucketed latency histogram: fixed ~2 KiB footprint, lock-free
//! recording, mergeable snapshots, quantiles with a bounded relative
//! error.
//!
//! Buckets follow an HdrHistogram-style layout: each power-of-two octave
//! is split into `2^SUB_BITS = 4` linear sub-buckets, so any bucket's
//! width is at most 25% of its lower bound. Quantiles report the bucket's
//! *upper* bound, giving the two-sided guarantee
//! `exact <= reported <= exact * 5/4` (plus one for integer rounding).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 4 linear sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Number of buckets covering the full `u64` range at `SUB_BITS = 2`.
pub const BUCKETS: usize = 252;

/// Index of the bucket that `v` falls into.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & 3;
        ((exp - SUB_BITS + 1) * 4 + sub as u32) as usize
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        (4 + (i % 4) as u64) << (i / 4 - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// Concurrent log-bucketed histogram. Recording is one relaxed
/// `fetch_add` into a bucket plus count/sum/max updates; snapshots are
/// consistent enough for reporting (buckets are read one by one, but
/// each value is a monotone counter).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the current contents into a mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram contents: bucket counts plus count/sum/max.
/// Snapshots merge exactly (bucket-wise addition), so a merged snapshot
/// is indistinguishable from a histogram fed the concatenated samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample, exact (not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th sample, clamped to the observed
    /// max. Zero when empty. Error bound: `exact <= quantile(q) <=
    /// exact * 5/4 + 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_layout_is_a_partition() {
        // Every bucket's upper bound + 1 is the next bucket's lower bound,
        // and indexing maps each boundary value into its own bucket.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "bucket {i}");
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn bucket_width_within_25_percent() {
        for i in 4..BUCKETS - 1 {
            let lo = bucket_lower(i);
            let width = bucket_upper(i) - lo + 1;
            assert!(width * 4 <= lo, "bucket {i}: width {width} lo {lo}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = s.quantile(q);
            assert!(got >= exact, "q={q}: {got} < {exact}");
            assert!(got <= exact * 5 / 4 + 1, "q={q}: {got} > bound");
        }
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4000);
        assert_eq!(s.sum(), (0..4000u64).sum::<u64>());
        assert_eq!(s.max(), 3999);
    }

    fn hist_of(samples: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        h.snapshot()
    }

    proptest! {
        #[test]
        fn merged_equals_concatenated(
            a in proptest::collection::vec(0u64..1_000_000, 0..200),
            b in proptest::collection::vec(0u64..1_000_000, 0..200),
        ) {
            let mut merged = hist_of(&a);
            merged.merge(&hist_of(&b));
            let mut cat = a.clone();
            cat.extend_from_slice(&b);
            prop_assert_eq!(merged, hist_of(&cat));
        }

        #[test]
        fn quantile_error_within_bucket_bound(
            mut samples in proptest::collection::vec(0u64..1_000_000, 1..300),
            qn in 0u64..=1000,
        ) {
            let q = qn as f64 / 1000.0;
            let s = hist_of(&samples);
            samples.sort_unstable();
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let exact = samples[rank - 1];
            let got = s.quantile(q);
            prop_assert!(got >= exact, "{} < exact {}", got, exact);
            prop_assert!(
                got <= exact + exact / 4 + 1,
                "{} above bound for exact {}", got, exact
            );
        }
    }
}
