//! Pluggable wall-time source for spans and events.
//!
//! This module is the one place in the workspace allowed to call
//! `std::time::Instant::now()` for observability timing (enforced by
//! `scripts/check_obs.sh`); everything else reads time through [`Clock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic nanosecond source. Implementations must be cheap and
/// monotonic per instance; absolute epoch is unspecified (readings are
/// only compared against each other).
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since an arbitrary per-clock origin.
    fn now_nanos(&self) -> u64;
}

/// Real wall clock, anchored at construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Hand-cranked clock for deterministic tests: time only moves when the
/// test calls [`ManualClock::advance_nanos`] (or sets it outright).
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward by `delta` nanoseconds.
    pub fn advance_nanos(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::Relaxed);
    }

    /// Moves the clock forward by `delta` microseconds.
    pub fn advance_micros(&self, delta: u64) {
        self.advance_nanos(delta * 1_000);
    }

    /// Sets the clock to an absolute nanosecond reading.
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance_micros(3);
        assert_eq!(c.now_nanos(), 3_000);
        c.set_nanos(10);
        assert_eq!(c.now_nanos(), 10);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
