//! Bounded ring-buffer event log.
//!
//! Holds the most recent `capacity` events; older entries are evicted on
//! push. Sequence numbers are assigned under the same lock as the push,
//! so they are gap-free and strictly ordered even under concurrency —
//! eviction is detectable as a gap between the first retained `seq` and
//! the previously observed one.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One entry in the event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Gap-free sequence number, starting at 0.
    pub seq: u64,
    /// Clock reading at record time, in microseconds.
    pub at_micros: u64,
    /// Taxonomy key: `flush`, `compact`, `fault_injected`, ...
    pub kind: String,
    /// Free-form context (path, counts, reason).
    pub detail: String,
}

#[derive(Debug, Default)]
struct LogInner {
    next_seq: u64,
    buf: VecDeque<Event>,
}

/// The bounded event ring buffer (see module docs).
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<LogInner>,
}

impl EventLog {
    /// An empty log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            inner: Mutex::new(LogInner::default()),
        }
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn push(&self, at_micros: u64, kind: &str, detail: String) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(Event {
            seq,
            at_micros,
            kind: kind.to_string(),
            detail,
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the retained events, oldest first (the log keeps them).
    pub fn drain_view(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_newest_and_seqs_stay_gap_free() {
        let log = EventLog::new(4);
        for i in 0..10u64 {
            log.push(i * 10, "tick", format!("{i}"));
        }
        let events = log.drain_view();
        assert_eq!(events.len(), 4);
        let seqs: Vec<_> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let details: Vec<_> = events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["6", "7", "8", "9"]);
        assert_eq!(events[0].at_micros, 60);
    }

    #[test]
    fn ordering_is_push_order() {
        let log = EventLog::new(16);
        log.push(5, "a", String::new());
        log.push(5, "b", String::new());
        log.push(4, "c", String::new());
        let kinds: Vec<_> = log.drain_view().into_iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["a", "b", "c"]);
    }

    #[test]
    fn concurrent_pushes_assign_unique_seqs() {
        use std::sync::Arc;
        let log = Arc::new(EventLog::new(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..256 {
                        log.push(0, "t", format!("{t}:{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seqs: Vec<_> = log.drain_view().into_iter().map(|e| e.seq).collect();
        assert_eq!(seqs.len(), 1024);
        seqs.sort_unstable();
        assert_eq!(seqs, (0..1024).collect::<Vec<_>>());
    }
}
