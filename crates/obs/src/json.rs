//! Minimal JSON parser, just enough for the obs smoke test and bench
//! tooling to re-read [`crate::ObsSnapshot::to_json`] output without an
//! external dependency.
//!
//! Supports the full JSON value grammar; numbers are parsed as `f64`
//! (exact for the integer counters the snapshot emits up to 2^53).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object; key order normalized by `BTreeMap`.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, `None` for non-objects.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("short \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn decodes_unicode_escapes_and_raw_utf8() {
        let v = parse("\"A\\u00e9é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aéé"));
    }
}
