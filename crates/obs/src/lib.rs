//! `mate_obs`: the observability substrate of the MATE engine.
//!
//! One [`Obs`] hub per engine (threaded through `EngineConfig` /
//! `MateConfig`) bundles three recording surfaces and one export surface:
//!
//! * **Metrics registry** ([`Registry`]) — named [`Counter`]s, [`Gauge`]s,
//!   and log-bucketed latency [`Histogram`]s (p50/p90/p99/max, mergeable,
//!   fixed ~2 KiB footprint each). A metric is registered once
//!   (get-or-create under a short registry lock) and recorded through its
//!   `Arc` handle with plain atomic operations — recording never takes the
//!   registry lock, so hot paths pay one `fetch_add`.
//! * **Spans and events** — [`Obs::span`] returns an RAII guard whose drop
//!   records the elapsed time into a `span_us.<name>` histogram and
//!   appends a completion event; [`Obs::event`] appends a free-form entry
//!   to a bounded ring buffer ([`EventLog`]). Both read wall time from a
//!   pluggable [`Clock`], so tests drive them deterministically with a
//!   [`ManualClock`]. Spans and events are gated by [`Obs::set_enabled`]:
//!   disabled, a span is a `None` guard — no clock read, no allocation,
//!   no lock.
//! * **Per-query profiles** ([`QueryProfile`]) — a flat summary of where
//!   one discovery query spent its time, filled by the engine's
//!   `discover_snapshot_profiled` path.
//! * **Export** — [`Obs::snapshot`] freezes every registered metric plus
//!   the event log into an [`ObsSnapshot`], renderable as machine-readable
//!   JSON ([`ObsSnapshot::to_json`], re-parseable with [`json::parse`])
//!   or Prometheus-style text ([`ObsSnapshot::to_prometheus`]).
//!
//! # Overhead model
//!
//! Counters/gauges/histograms are *always live*: one relaxed atomic RMW
//! per record, no branches on the enabled flag — cheap enough that the
//! engine's existing counters route through them unconditionally. The
//! enabled flag gates only the parts with real cost: clock reads, event
//! formatting, and ring-buffer pushes. A disabled hub therefore adds one
//! predictable branch per span site and nothing per metric.

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod hist;
pub mod json;
pub mod lockrank;
pub mod profile;
pub mod registry;
pub mod snapshot;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use events::{Event, EventLog};
pub use hist::{Histogram, HistogramSnapshot};
pub use lockrank::{Rank, RankedCondvar, RankedMutex, RankedRwLock};
pub use profile::QueryProfile;
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::ObsSnapshot;

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default capacity of the bounded event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// The observability hub: a metrics registry, an event ring buffer, and a
/// clock, shared as one `Arc<Obs>` across an engine and its callers (see
/// the crate docs for the overhead model).
pub struct Obs {
    enabled: AtomicBool,
    clock: Arc<dyn Clock>,
    registry: Registry,
    events: EventLog,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// An enabled hub on the monotonic wall clock.
    pub fn new() -> Self {
        Obs::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A hub with spans/events disabled (metrics stay live; see crate
    /// docs). Re-enable any time with [`Obs::set_enabled`].
    pub fn disabled() -> Self {
        let obs = Obs::new();
        obs.set_enabled(false);
        obs
    }

    /// An enabled hub reading time from `clock` (tests pass a
    /// [`ManualClock`] for deterministic spans and event timestamps).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Obs {
            enabled: AtomicBool::new(true),
            clock,
            registry: Registry::new(),
            events: EventLog::new(DEFAULT_EVENT_CAPACITY),
        }
    }

    /// Turns span/event recording on or off. Metrics are unaffected.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans and events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The clock spans and events read wall time from.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The metrics registry (get-or-register handles; see [`Registry`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Get-or-register the counter `name` (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Get-or-register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Appends an event to the ring buffer (no-op while disabled). `kind`
    /// is the event taxonomy key (`flush`, `fault_injected`, ...);
    /// `detail` carries the free-form context.
    pub fn event(&self, kind: &str, detail: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        self.events
            .push(self.clock.now_nanos() / 1_000, kind, detail.into());
    }

    /// Starts an RAII span: the guard's drop records the elapsed
    /// microseconds into the `span_us.<name>` histogram and appends a
    /// completion event of kind `name`. While the hub is disabled this
    /// returns an inert guard without reading the clock.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard {
            inner: Some(SpanInner {
                obs: self,
                name,
                start_nanos: self.clock.now_nanos(),
            }),
        }
    }

    /// The current contents of the event ring buffer, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.drain_view()
    }

    /// Freezes every registered metric plus the event log into an
    /// exportable [`ObsSnapshot`]. One pass per metric kind under the
    /// registry lock, so the values within each kind are read coherently.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            counters: self.registry.counter_values(),
            gauges: self.registry.gauge_values(),
            histograms: self.registry.histogram_snapshots(),
            events: self.events(),
        }
    }
}

struct SpanInner<'a> {
    obs: &'a Obs,
    name: &'static str,
    start_nanos: u64,
}

/// RAII span timer returned by [`Obs::span`]; see there.
pub struct SpanGuard<'a> {
    inner: Option<SpanInner<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            let end = s.obs.clock.now_nanos();
            let us = end.saturating_sub(s.start_nanos) / 1_000;
            s.obs.histogram(&format!("span_us.{}", s.name)).record(us);
            s.obs.events.push(end / 1_000, s.name, format!("{us}us"));
        }
    }
}

/// `span!(obs, "flush")`: sugar for holding an [`Obs::span`] guard until
/// the end of the enclosing block.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        let _mate_obs_span_guard = $obs.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_reads_no_clock() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(clock.clone());
        obs.set_enabled(false);
        {
            let _g = obs.span("quiet");
            clock.advance_micros(50);
        }
        assert!(obs.events().is_empty());
        assert!(obs.snapshot().histograms.is_empty());
    }

    #[test]
    fn span_records_histogram_and_event() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(clock.clone());
        {
            let _g = obs.span("flush");
            clock.advance_micros(250);
        }
        let snap = obs.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "span_us.flush");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 250);
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "flush");
        assert_eq!(events[0].detail, "250us");
        assert_eq!(events[0].at_micros, 250);
    }

    #[test]
    fn span_macro_scopes_to_block() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::with_clock(clock.clone());
        {
            span!(obs, "scoped");
            clock.advance_micros(7);
        }
        assert_eq!(obs.events().len(), 1);
        assert_eq!(obs.events()[0].detail, "7us");
    }

    #[test]
    fn metrics_live_while_disabled() {
        let obs = Obs::disabled();
        obs.counter("c").add(3);
        obs.gauge("g").set(9);
        obs.histogram("h").record(100);
        let snap = obs.snapshot();
        assert_eq!(snap.counters, vec![("c".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 9)]);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }
}
