//! Ranked locks: a runtime deadlock-order checker that compiles away in
//! release builds.
//!
//! The engine's lock graph spans five domains (engine write lock, lake
//! commit queue, memtable shard latches, cold-resolution caches, the
//! published-snapshot slot). Deadlock freedom rests on one global rule:
//! **every thread acquires locks in strictly increasing rank order**. The
//! rule is documented in `mate_index::engine` and statically gated by
//! `mate-analyze` rule R4 (no raw `Mutex`/`RwLock` in `crates/index`);
//! this module enforces it *dynamically*, so the whole test suite doubles
//! as a deadlock-order fuzzer:
//!
//! * [`RankedMutex`], [`RankedRwLock`], and [`RankedCondvar`] are
//!   newtypes over their `std::sync` counterparts, each carrying a
//!   [`Rank`].
//! * In **debug builds** every acquisition (read or write) pushes the
//!   rank onto a thread-local stack of held ranks and panics if the new
//!   rank is not strictly greater than every rank already held — the
//!   canonical symptom of a potential ABBA deadlock, caught on the first
//!   mis-ordered acquisition instead of the unlucky interleaving.
//! * In **release builds** the bookkeeping is compiled out entirely
//!   ([`Held`] is a zero-sized type and `acquire` is an inlined no-op),
//!   so a ranked lock costs exactly what the underlying `std::sync`
//!   primitive costs.
//!
//! Two ranks compare by `(major, minor)`. Locks of one domain that may be
//! nested in a defined order (the per-shard memtable latches, acquired in
//! ascending shard order) share a major rank and differ in `minor`.
//!
//! Poisoning: all guards recover from a poisoned inner lock. Every
//! current user (the engine memtable shards, the lake's queue/slot state,
//! the merged-source memoization caches) either restores its invariants
//! before any panic can unwind past a guard or re-validates what it reads,
//! so propagating the poison would only cascade one panicking thread into
//! every other (see the poisoning notes in `mate_index::engine::lake`).
//!
//! Waiting on a [`RankedCondvar`] keeps the mutex's rank on the held
//! stack: the thread is blocked for the whole wait and reacquires the
//! same mutex before continuing, so no acquisition this thread could
//! interleave can observe the temporarily released lock.

use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Position of a lock in the global acquisition order (see module docs).
///
/// Ordered lexicographically by `(major, minor)`; the `name` is carried
/// for diagnostics only. Construct rank constants with [`Rank::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank {
    major: u16,
    minor: u16,
    name: &'static str,
}

impl Rank {
    /// A rank at `(major, minor)` with a diagnostic `name`.
    pub const fn new(major: u16, minor: u16, name: &'static str) -> Self {
        Rank { major, minor, name }
    }

    /// The combined ordering key (`major` then `minor`).
    pub const fn key(self) -> u32 {
        ((self.major as u32) << 16) | self.minor as u32
    }

    /// Diagnostic name of the lock domain.
    pub const fn name(self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (rank {}.{})", self.name, self.major, self.minor)
    }
}

#[cfg(debug_assertions)]
mod tracking {
    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks currently held by this thread, in acquisition order.
        static HELD: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
    }

    /// Debug-build token for one held ranked lock: created on acquisition
    /// (after the order check), removed from the thread-local stack on
    /// drop. Guards may drop out of LIFO order, so removal searches for
    /// the newest entry with this token's rank.
    #[derive(Debug)]
    pub struct Held {
        key: u32,
    }

    impl Held {
        /// Checks the acquisition against every rank this thread already
        /// holds and records it.
        ///
        /// # Panics
        /// Panics if `rank` is not strictly greater than all held ranks —
        /// the documented total order would be violated, i.e. this
        /// acquisition could deadlock against a thread locking the same
        /// pair in the documented order.
        pub fn acquire(rank: Rank) -> Held {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(worst) = held.iter().max_by_key(|r| r.key()) {
                    if rank.key() <= worst.key() {
                        let chain = held
                            .iter()
                            .map(|r| r.to_string())
                            .collect::<Vec<_>>()
                            .join(" -> ");
                        // Drop the borrow before panicking so the guard
                        // drops of unwinding frames can still pop.
                        drop(held);
                        panic!(
                            "lock-rank violation: acquiring {rank} while holding [{chain}]; \
                             acquisitions must follow strictly increasing rank order \
                             (see mate_index::engine lock-rank table)"
                        );
                    }
                }
                held.push(rank);
            });
            Held { key: rank.key() }
        }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|r| r.key() == self.key) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Number of ranked locks the current thread holds (test hook).
    pub fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(not(debug_assertions))]
mod tracking {
    use super::Rank;

    /// Release-build token: zero-sized, no bookkeeping.
    #[derive(Debug)]
    pub struct Held;

    impl Held {
        /// Release builds skip all order checking.
        #[inline(always)]
        pub fn acquire(_rank: Rank) -> Held {
            Held
        }
    }

    /// Release builds do not track held locks.
    #[inline(always)]
    pub fn held_count() -> usize {
        0
    }
}

pub use tracking::{held_count, Held};

/// A [`std::sync::Mutex`] that participates in rank checking (see module
/// docs). Poison-recovering: [`RankedMutex::lock`] never returns `Err`.
#[derive(Debug)]
pub struct RankedMutex<T> {
    rank: Rank,
    inner: Mutex<T>,
}

/// RAII guard of a [`RankedMutex`]; releases the lock and pops the rank
/// on drop.
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    _held: Held,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex at `rank`.
    pub const fn new(rank: Rank, value: T) -> Self {
        RankedMutex {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// The lock's rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquires the lock, blocking until available. Recovers the guard if
    /// a previous holder panicked (see module docs).
    ///
    /// # Panics
    /// In debug builds, panics on a rank-order violation.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        let held = Held::acquire(self.rank);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        RankedMutexGuard { inner, _held: held }
    }

    /// Acquires the lock only if it is free right now. The rank check
    /// runs (and can panic) even when the attempt would return `None` —
    /// an out-of-order `try_lock` is the same latent deadlock.
    pub fn try_lock(&self) -> Option<RankedMutexGuard<'_, T>> {
        let held = Held::acquire(self.rank);
        match self.inner.try_lock() {
            Ok(inner) => Some(RankedMutexGuard { inner, _held: held }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RankedMutexGuard {
                inner: p.into_inner(),
                _held: held,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with a [`RankedMutex`]. The wait keeps the
/// mutex's rank on the held stack (see module docs).
#[derive(Debug, Default)]
pub struct RankedCondvar {
    inner: Condvar,
}

impl RankedCondvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        RankedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and blocks until notified,
    /// then reacquires the mutex (poison-recovering) and returns the
    /// guard.
    pub fn wait<'a, T>(&self, guard: RankedMutexGuard<'a, T>) -> RankedMutexGuard<'a, T> {
        let RankedMutexGuard { inner, _held } = guard;
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        RankedMutexGuard { inner, _held }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A [`std::sync::RwLock`] that participates in rank checking. Both read
/// and write acquisitions push the lock's rank — reader/writer deadlock
/// cycles are rank-order violations all the same. Poison-recovering like
/// [`RankedMutex`].
#[derive(Debug)]
pub struct RankedRwLock<T> {
    rank: Rank,
    inner: RwLock<T>,
}

/// Shared-read RAII guard of a [`RankedRwLock`].
#[derive(Debug)]
pub struct RankedReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    _held: Held,
}

/// Exclusive-write RAII guard of a [`RankedRwLock`].
#[derive(Debug)]
pub struct RankedWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    _held: Held,
}

impl<T> RankedRwLock<T> {
    /// Wraps `value` in a reader-writer lock at `rank`.
    pub const fn new(rank: Rank, value: T) -> Self {
        RankedRwLock {
            rank,
            inner: RwLock::new(value),
        }
    }

    /// The lock's rank.
    pub const fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquires the shared read side.
    ///
    /// # Panics
    /// In debug builds, panics on a rank-order violation (including a
    /// recursive read of the same lock, which can deadlock against a
    /// queued writer on `std::sync::RwLock`).
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        let held = Held::acquire(self.rank);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RankedReadGuard { inner, _held: held }
    }

    /// Acquires the exclusive write side.
    ///
    /// # Panics
    /// In debug builds, panics on a rank-order violation.
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        let held = Held::acquire(self.rank);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RankedWriteGuard { inner, _held: held }
    }

    /// Consumes the lock, returning the inner value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const LOW: Rank = Rank::new(10, 0, "low");
    const MID_A: Rank = Rank::new(20, 0, "mid-a");
    const MID_B: Rank = Rank::new(20, 1, "mid-b");
    const HIGH: Rank = Rank::new(30, 0, "high");

    #[test]
    fn in_order_acquisition_is_clean() {
        let a = RankedMutex::new(LOW, 1u32);
        let b = RankedRwLock::new(MID_A, 2u32);
        let c = RankedMutex::new(HIGH, 3u32);
        let ga = a.lock();
        let gb = b.read();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
        drop((ga, gb, gc));
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn same_major_ascending_minor_is_clean() {
        let a = RankedMutex::new(MID_A, 1u32);
        let b = RankedMutex::new(MID_B, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn out_of_lifo_drop_order_is_tracked() {
        let a = RankedMutex::new(LOW, 1u32);
        let b = RankedMutex::new(HIGH, 2u32);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released before the higher-ranked guard
        drop(gb);
        assert_eq!(held_count(), 0);
        // A fresh in-order sequence still passes.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn out_of_order_acquisition_panics_in_debug() {
        let err = std::thread::spawn(|| {
            let hi = RankedMutex::new(HIGH, 0u32);
            let lo = RankedMutex::new(LOW, 0u32);
            let _g = hi.lock();
            let _violation = lo.lock();
        })
        .join()
        .expect_err("descending-rank acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("lock-rank violation"),
            "unexpected panic: {msg}"
        );
        assert!(msg.contains("low") && msg.contains("high"));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn equal_rank_nesting_panics_in_debug() {
        let err = std::thread::spawn(|| {
            let a = RankedMutex::new(MID_A, 0u32);
            let b = RankedMutex::new(MID_A, 0u32);
            let _g = a.lock();
            let _violation = b.lock(); // same (major, minor): ABBA-prone
        })
        .join()
        .expect_err("equal-rank nesting must panic");
        drop(err);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn try_lock_checks_rank_too() {
        let err = std::thread::spawn(|| {
            let hi = RankedRwLock::new(HIGH, 0u32);
            let lo = RankedMutex::new(LOW, 0u32);
            let _g = hi.write();
            let _violation = lo.try_lock();
        })
        .join()
        .expect_err("out-of-order try_lock must panic");
        drop(err);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn violation_unwind_releases_held_ranks() {
        let lo = RankedMutex::new(LOW, 0u32);
        let hi = RankedMutex::new(HIGH, 0u32);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = hi.lock();
            let _violation = lo.lock();
        }));
        assert!(res.is_err());
        // The unwinding frame dropped its guard: nothing leaks into later
        // acquisitions on this thread.
        assert_eq!(held_count(), 0);
        let _ok = lo.lock();
    }

    #[test]
    fn condvar_wait_roundtrips_the_guard() {
        let pair = Arc::new((RankedMutex::new(LOW, false), RankedCondvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut ready = m.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
                true
            })
        };
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(RankedMutex::new(LOW, 7u32));
        let rw = Arc::new(RankedRwLock::new(HIGH, 8u32));
        {
            let m = Arc::clone(&m);
            let rw = Arc::clone(&rw);
            let _ = std::thread::spawn(move || {
                let _g1 = m.lock();
                let _g2 = rw.write();
                panic!("poison both");
            })
            .join();
        }
        assert_eq!(*m.lock(), 7);
        assert_eq!(*rw.read(), 8);
        assert_eq!(Arc::try_unwrap(m).unwrap().into_inner(), 7);
    }

    #[test]
    fn threads_have_independent_stacks() {
        // Thread A holding a high rank must not constrain thread B.
        let hi = Arc::new(RankedMutex::new(HIGH, 0u32));
        let lo = Arc::new(RankedMutex::new(LOW, 0u32));
        let _ga = hi.lock();
        let lo2 = Arc::clone(&lo);
        std::thread::spawn(move || {
            let _gb = lo2.lock(); // fresh stack: no violation
        })
        .join()
        .unwrap();
    }
}
