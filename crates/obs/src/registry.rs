//! Named-metric registry: counters, gauges, and histograms keyed by a
//! dotted string name.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short mutex and
//! returns an `Arc` handle; callers hold the handle and record through
//! plain atomics, so the registry lock is never on a hot path. Snapshot
//! reads walk each kind's map under its lock in one pass, which is what
//! makes a multi-counter read internally coherent (no counter can be
//! observed mid-update relative to the pass).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// Monotone (well, resettable) event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the value (used to mirror an externally-owned counter).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The metric catalog: three name-keyed maps, one per metric kind.
/// `BTreeMap` keeps enumeration order stable for exports and diffing.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get-or-register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// All counters read in one pass under the lock, name-sorted.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges read in one pass under the lock, name-sorted.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms snapshotted in one pass under the lock, name-sorted.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter_values(), vec![("x".to_string(), 3)]);
    }

    #[test]
    fn enumeration_is_name_sorted() {
        let r = Registry::new();
        r.counter("b.two");
        r.counter("a.one");
        let names: Vec<_> = r.counter_values().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
    }

    #[test]
    fn concurrent_recorders_agree() {
        use std::sync::Arc as StdArc;
        let r = StdArc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = StdArc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("lat");
                    for i in 0..500u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("hits").get(), 2000);
        assert_eq!(r.histogram("lat").count(), 2000);
    }
}
