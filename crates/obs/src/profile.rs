//! Per-query discovery profile: where one `discover_snapshot` call spent
//! its time and I/O budget.

/// Flat summary of one discovery query, returned alongside
/// `DiscoveryStats` by the engine's profiled query path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Microseconds spent in the init phase (initial-column selection,
    /// key-map build, candidate collection and ordering).
    pub init_us: u64,
    /// Total query wall time in microseconds.
    pub total_us: u64,
    /// Candidate-loop busy time per worker, microseconds. One entry per
    /// worker thread; a single entry for the sequential path.
    pub worker_busy_us: Vec<u64>,
    /// Posting-list items fetched while probing candidates.
    pub postings_probed: u64,
    /// Cold-segment blocks decoded.
    pub blocks_decoded: u64,
    /// Cold-segment blocks skipped via block-level pruning.
    pub blocks_skipped: u64,
    /// Source-cache hits during the query.
    pub cache_hits: u64,
    /// Source-cache misses during the query.
    pub cache_misses: u64,
    /// Records committed after the snapshot this query read from
    /// (staleness of the served snapshot).
    pub snapshot_lag: u64,
}

impl QueryProfile {
    /// Renders the profile as a single JSON object.
    pub fn to_json(&self) -> String {
        let workers = self
            .worker_busy_us
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"init_us\":{},\"total_us\":{},\"worker_busy_us\":[{}],",
                "\"postings_probed\":{},\"blocks_decoded\":{},",
                "\"blocks_skipped\":{},\"cache_hits\":{},",
                "\"cache_misses\":{},\"snapshot_lag\":{}}}"
            ),
            self.init_us,
            self.total_us,
            workers,
            self.postings_probed,
            self.blocks_decoded,
            self.blocks_skipped,
            self.cache_hits,
            self.cache_misses,
            self.snapshot_lag,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_parses() {
        let p = QueryProfile {
            init_us: 10,
            total_us: 110,
            worker_busy_us: vec![40, 60],
            postings_probed: 7,
            ..QueryProfile::default()
        };
        let v = crate::json::parse(&p.to_json()).unwrap();
        assert_eq!(v.get("init_us").and_then(|x| x.as_f64()), Some(10.0));
        assert_eq!(
            v.get("worker_busy_us")
                .and_then(|x| x.as_arr())
                .map(|a| a.len()),
            Some(2)
        );
        assert_eq!(v.get("snapshot_lag").and_then(|x| x.as_f64()), Some(0.0));
    }
}
