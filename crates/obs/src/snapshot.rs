//! Frozen view of an [`crate::Obs`] hub: every registered metric plus the
//! event log, renderable as JSON or Prometheus-style text.

use crate::events::Event;
use crate::hist::HistogramSnapshot;

/// One coherent export of the hub's state (see [`crate::Obs::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// `(name, value)` for every registered counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every registered histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map our dotted/dashed
/// names onto that alphabet.
fn sanitize_prom(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl ObsSnapshot {
    /// Every metric name in the snapshot (counters, gauges, histograms),
    /// in export order.
    pub fn metric_names(&self) -> Vec<String> {
        self.counters
            .iter()
            .map(|(k, _)| k.clone())
            .chain(self.gauges.iter().map(|(k, _)| k.clone()))
            .chain(self.histograms.iter().map(|(k, _)| k.clone()))
            .collect()
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name:
    /// {count,sum,max,mean,p50,p90,p99}}, "events": [..]}`. The output
    /// parses with [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},",
                    "\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}"
                ),
                escape_json(k),
                h.count(),
                h.sum(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            ));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_micros\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.at_micros,
                escape_json(&e.kind),
                escape_json(&e.detail),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the metrics (not events) as Prometheus text exposition:
    /// counters and gauges as plain samples, histograms as `_count`,
    /// `_sum`, `_max`, and `{quantile="..."}` summary lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize_prom(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = sanitize_prom(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = sanitize_prom(k);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_max {}\n", h.max()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::Obs;

    fn sample_obs() -> Obs {
        let obs = Obs::new();
        obs.counter("engine.flushes").add(3);
        obs.gauge("engine_stats.tables").set(12);
        let h = obs.histogram("span_us.flush");
        for v in [100, 200, 300] {
            h.record(v);
        }
        obs.event("flush", "seg=2");
        obs
    }

    #[test]
    fn json_roundtrips_all_registered_metrics() {
        let snap = sample_obs().snapshot();
        let v = json::parse(&snap.to_json()).unwrap();
        let counters = v.get("counters").and_then(|c| c.as_obj()).unwrap();
        assert_eq!(
            counters.get("engine.flushes").and_then(|x| x.as_f64()),
            Some(3.0)
        );
        let gauges = v.get("gauges").and_then(|g| g.as_obj()).unwrap();
        assert_eq!(
            gauges.get("engine_stats.tables").and_then(|x| x.as_f64()),
            Some(12.0)
        );
        let hists = v.get("histograms").and_then(|h| h.as_obj()).unwrap();
        let flush = hists.get("span_us.flush").unwrap();
        assert_eq!(flush.get("count").and_then(|x| x.as_f64()), Some(3.0));
        assert_eq!(flush.get("max").and_then(|x| x.as_f64()), Some(300.0));
        let events = v.get("events").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("detail").and_then(|d| d.as_str()),
            Some("seg=2")
        );
        // Every registered metric name appears somewhere in the document.
        for name in snap.metric_names() {
            assert!(
                counters.contains_key(&name)
                    || gauges.contains_key(&name)
                    || hists.contains_key(&name),
                "metric {name} missing from JSON"
            );
        }
    }

    #[test]
    fn json_escapes_details() {
        let obs = Obs::new();
        obs.event("odd", "a\"b\\c\nd");
        let v = json::parse(&obs.snapshot().to_json()).unwrap();
        let events = v.get("events").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(
            events[0].get("detail").and_then(|d| d.as_str()),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn prometheus_renders_sanitized_names() {
        let text = sample_obs().snapshot().to_prometheus();
        assert!(text.contains("engine_flushes 3"));
        assert!(text.contains("# TYPE span_us_flush summary"));
        assert!(text.contains("span_us_flush_count 3"));
        assert!(text.contains("span_us_flush{quantile=\"0.5\"}"));
    }
}
