//! CRC-32 (IEEE 802.3 polynomial), table-driven, implemented from scratch.
//!
//! Each block of a segment file carries a CRC so corruption and truncation
//! are detected at load time rather than surfacing as garbage query results.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB88320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental update; start with `0xFFFF_FFFF`, finish by XOR-ing
/// `0xFFFF_FFFF` (or use [`Crc32`] which handles this).
#[inline]
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }
}

impl Crc32 {
    /// Starts a fresh computation.
    pub fn new() -> Self {
        Crc32::default()
    }

    /// Feeds bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical "check" value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello world, this is a longer test buffer";
        let mut c = Crc32::new();
        c.write(&data[..10]);
        c.write(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some block payload".to_vec();
        let before = crc32(&data);
        data[5] ^= 1;
        assert_ne!(before, crc32(&data));
    }
}
