//! String dictionary encoding.
//!
//! The same cell value occurs in many posting lists and many tables; the
//! dictionary stores each distinct string once and replaces occurrences with
//! varint ids. Ids are assigned in first-seen order.

use crate::codec::{Reader, Writer};
use crate::error::StorageError;
use std::collections::HashMap;

/// Builder that interns strings and assigns dense ids.
#[derive(Debug, Default)]
pub struct DictBuilder {
    ids: HashMap<String, u32>,
    strings: Vec<String>,
}

impl DictBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DictBuilder::default()
    }

    /// Interns `s`, returning its id (existing or newly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if no strings were interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Finishes building.
    pub fn build(self) -> Dictionary {
        Dictionary {
            strings: self.strings,
        }
    }
}

/// An immutable id → string table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary {
    strings: Vec<String>,
}

impl Dictionary {
    /// Resolves an id to its string.
    pub fn get(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Serializes into a writer (count, then length-prefixed strings).
    pub fn encode(&self, w: &mut Writer) {
        w.put_varint(self.strings.len() as u64);
        for s in &self.strings {
            w.put_str(s);
        }
    }

    /// Deserializes from a reader.
    pub fn decode(r: &mut Reader) -> Result<Dictionary, StorageError> {
        let n = r.get_varint()? as usize;
        // Sanity bound: each entry needs at least one length byte.
        if n > r.remaining() {
            return Err(StorageError::InvalidLength {
                context: "dictionary size",
                value: n as u64,
            });
        }
        let mut strings = Vec::with_capacity(n);
        for _ in 0..n {
            strings.push(r.get_str()?);
        }
        Ok(Dictionary { strings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_dedupes() {
        let mut b = DictBuilder::new();
        let a = b.intern("foo");
        let c = b.intern("bar");
        let a2 = b.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        assert_eq!(b.len(), 2);
        let d = b.build();
        assert_eq!(d.get(a), Some("foo"));
        assert_eq!(d.get(c), Some("bar"));
        assert_eq!(d.get(99), None);
    }

    #[test]
    fn ids_are_first_seen_order() {
        let mut b = DictBuilder::new();
        assert_eq!(b.intern("z"), 0);
        assert_eq!(b.intern("a"), 1);
        assert_eq!(b.intern("m"), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut b = DictBuilder::new();
        for s in ["", "a", "hello world", "ünïcödé"] {
            b.intern(s);
        }
        let d = b.build();
        let mut w = Writer::new();
        d.encode(&mut w);
        let mut r = Reader::new(w.finish());
        let d2 = Dictionary::decode(&mut r).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn decode_rejects_absurd_count() {
        let mut w = Writer::new();
        w.put_varint(1 << 40);
        let mut r = Reader::new(w.finish());
        assert!(matches!(
            Dictionary::decode(&mut r),
            Err(StorageError::InvalidLength { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(strings: Vec<String>) {
            let mut b = DictBuilder::new();
            for s in &strings {
                b.intern(s);
            }
            let d = b.build();
            let mut w = Writer::new();
            d.encode(&mut w);
            let d2 = Dictionary::decode(&mut Reader::new(w.finish())).unwrap();
            prop_assert_eq!(d, d2);
        }
    }
}
