//! Binary persistence for MATE corpora and indexes.
//!
//! The paper stores its inverted index in Vertica; this reproduction ships a
//! small embedded storage layer instead:
//!
//! * [`varint`] — LEB128 variable-length integers with zigzag for signed
//!   values (posting lists are delta-encoded, so most integers are tiny).
//! * [`crc32`] — CRC-32 (IEEE) for block checksums, implemented from scratch.
//! * [`codec`] — a cursor-style [`codec::Writer`]/[`codec::Reader`] pair over
//!   `bytes` buffers with length-prefixed strings and slices.
//! * [`dict`] — order-preserving string dictionary encoding: the same value
//!   string appears in many posting lists, so values are stored once.
//! * [`bitset`] — Rice-coded sparse bitmaps (super keys are sparse: a few
//!   set bits per cell, OR-ed per row).
//! * [`postings`] — block-compressed posting lists with per-block skip
//!   headers (segment format v2): bit-packed delta streams, decodable one
//!   block at a time so probes can skip blocks they cannot intersect.
//! * [`segment`] — the on-disk container: a magic header, named blocks, each
//!   length-prefixed and CRC-checked, so partial writes and corruption are
//!   detected at load time.
//! * [`manifest`] — CRC-framed state files with atomic (tmp + rename +
//!   fsync) replacement, for the multi-segment engine's manifest.
//! * [`pager`] — a budgeted [`pager::PageCache`] that demand-pages
//!   immutable segment files in fixed-size pages via `Vfs::pread`, with
//!   CLOCK eviction, so the cold tier's resident memory is bounded by a
//!   global byte budget instead of the total cold-stack size.
//! * [`tombstone`] — delta-coded segment claim sets: which tables a segment
//!   owns, with zero-count claims acting as tombstones that mask older
//!   segments.
//! * [`vfs`] — the filesystem seam: every durability-relevant I/O call of
//!   the engine goes through a [`Vfs`] handle ([`StdVfs`] in production,
//!   [`FaultVfs`] injecting deterministic faults under test).
//!
//! All multi-byte integers are little-endian.

#![warn(missing_docs)]

pub mod bitset;
pub mod codec;
pub mod crc32;
pub mod dict;
pub mod error;
pub mod manifest;
pub mod pager;
pub mod postings;
pub mod segment;
pub mod tombstone;
pub mod varint;
pub mod vfs;

pub use codec::{Reader, Writer};
pub use dict::{DictBuilder, Dictionary};
pub use error::{IoCtx, StorageError};
pub use pager::{PageCache, PagerStats, DEFAULT_PAGE_SIZE};
pub use segment::{SegmentReader, SegmentWriter};
pub use vfs::{FaultVfs, StdVfs, Vfs, VfsFile};
