//! Cursor-style binary writer/reader over `bytes` buffers.
//!
//! Fixed-width integers are little-endian; counts and ids are varints;
//! strings and byte slices are varint-length-prefixed.

use crate::error::StorageError;
use crate::varint;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a fixed-width little-endian u32.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a fixed-width little-endian u64.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Pre-allocates room for at least `additional` more bytes (used with
    /// [`crate::varint::encoded_len`] to presize codec output exactly).
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a varint u64.
    pub fn put_varint(&mut self, v: u64) {
        varint::write_u64(&mut self.buf, v);
    }

    /// Appends a varint u32 (no u64 widening at the call site).
    pub fn put_varint_u32(&mut self, v: u32) {
        varint::write_u32(&mut self.buf, v);
    }

    /// Appends a zigzag varint i64.
    pub fn put_varint_signed(&mut self, v: i64) {
        varint::write_i64(&mut self.buf, v);
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, data: &[u8]) {
        self.buf.put_slice(data);
    }

    /// Appends varint-length-prefixed bytes.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.put_varint(data.len() as u64);
        self.buf.put_slice(data);
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a slice of u64 words (count-prefixed, fixed-width payload) —
    /// used for super-key storage where values are uniformly distributed and
    /// varints would not compress.
    pub fn put_u64_slice(&mut self, words: &[u64]) {
        self.put_varint(words.len() as u64);
        for &w in words {
            self.buf.put_u64_le(w);
        }
    }

    /// Finishes writing and returns the immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequential binary reader.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Wraps a buffer for reading.
    pub fn new(buf: Bytes) -> Self {
        Reader { buf }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// True if fully consumed.
    pub fn is_exhausted(&self) -> bool {
        !self.buf.has_remaining()
    }

    fn need(&self, n: usize, context: &'static str) -> Result<(), StorageError> {
        if self.buf.remaining() < n {
            Err(StorageError::UnexpectedEof { context })
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StorageError> {
        self.need(1, "u8")?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian u32.
    pub fn get_u32_le(&mut self) -> Result<u32, StorageError> {
        self.need(4, "u32")?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian u64.
    pub fn get_u64_le(&mut self) -> Result<u64, StorageError> {
        self.need(8, "u64")?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a varint u64.
    pub fn get_varint(&mut self) -> Result<u64, StorageError> {
        varint::read_u64(&mut self.buf)
    }

    /// Reads a varint u32, rejecting out-of-range values (replaces the
    /// `get_varint()? as u32` + manual bounds check pattern).
    pub fn get_varint_u32(&mut self) -> Result<u32, StorageError> {
        varint::read_u32(&mut self.buf)
    }

    /// Reads a zigzag varint i64.
    pub fn get_varint_signed(&mut self) -> Result<i64, StorageError> {
        varint::read_i64(&mut self.buf)
    }

    /// Reads varint-length-prefixed bytes (zero-copy slice of the buffer).
    pub fn get_bytes(&mut self) -> Result<Bytes, StorageError> {
        let len = self.get_varint()? as usize;
        self.get_raw(len)
    }

    /// Reads exactly `len` raw bytes (zero-copy slice of the buffer).
    pub fn get_raw(&mut self, len: usize) -> Result<Bytes, StorageError> {
        self.need(len, "raw payload")?;
        Ok(self.buf.split_to(len))
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StorageError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| StorageError::InvalidUtf8)
    }

    /// Reads a count-prefixed u64 slice written by [`Writer::put_u64_slice`].
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, StorageError> {
        let n = self.get_varint()? as usize;
        self.need(n * 8, "u64 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.buf.get_u64_le());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mixed_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(42);
        w.put_varint(300);
        w.put_varint_signed(-5);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        w.put_u64_slice(&[10, 20]);

        let mut r = Reader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32_le().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le().unwrap(), 42);
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_varint_signed().unwrap(), -5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(r.get_u64_slice().unwrap(), vec![10, 20]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn eof_on_every_getter() {
        let mut r = Reader::new(Bytes::new());
        assert!(r.get_u8().is_err());
        assert!(r.get_u32_le().is_err());
        assert!(r.get_u64_le().is_err());
        assert!(r.get_varint().is_err());
        assert!(r.get_str().is_err());
        assert!(r.get_u64_slice().is_err());
    }

    #[test]
    fn truncated_string_payload() {
        let mut w = Writer::new();
        w.put_varint(100); // claims 100 bytes follow
        w.put_raw(b"short");
        let mut r = Reader::new(w.finish());
        assert!(matches!(
            r.get_bytes(),
            Err(StorageError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let mut r = Reader::new(w.finish());
        assert!(matches!(r.get_str(), Err(StorageError::InvalidUtf8)));
    }

    proptest! {
        #[test]
        fn prop_string_roundtrip(s: String) {
            let mut w = Writer::new();
            w.put_str(&s);
            let mut r = Reader::new(w.finish());
            prop_assert_eq!(r.get_str().unwrap(), s);
        }

        #[test]
        fn prop_u64_slice_roundtrip(v: Vec<u64>) {
            let mut w = Writer::new();
            w.put_u64_slice(&v);
            let mut r = Reader::new(w.finish());
            prop_assert_eq!(r.get_u64_slice().unwrap(), v);
        }
    }
}
