//! CRC-framed manifest files with atomic replacement.
//!
//! The multi-segment index engine records its live state (segment stack, WAL
//! watermark, checkpoint generations) in a single small manifest file that
//! must be updated *atomically*: a crash can never leave a half-written
//! manifest, because readers would then recover a state that mixes two
//! generations. The classic recipe is used here:
//!
//! 1. write the new manifest to `<path>.tmp` and `fsync` it,
//! 2. `rename` it over `<path>` (atomic on POSIX filesystems),
//! 3. `fsync` the parent directory so the rename itself is durable.
//!
//! The file body is framed, independent of its schema:
//!
//! ```text
//! magic "MATEMAN1" (8 bytes)
//! version: u32 LE
//! payload length: u32 LE
//! crc32(payload): u32 LE
//! payload bytes
//! ```
//!
//! A torn write (power loss between steps) either leaves the old file intact
//! or a `.tmp` orphan that readers ignore; a corrupt payload fails the CRC
//! and is reported as a structured error instead of being half-applied.
//!
//! The same framed [`save`]/[`load`] path is reused for every small record
//! the engine commits via rename — not just the MANIFEST file but also the
//! `cdelta-*` incremental corpus-delta records that flushes append (each is
//! an independently CRC-checked frame; the manifest names the chain that is
//! live, so stray delta files from dead generations are ignored and GC'd).

use crate::crc32::crc32;
use crate::error::{IoCtx as _, StorageError};
use crate::vfs::{StdVfs, Vfs};
use bytes::Bytes;
use std::path::Path;

const MAGIC: &[u8; 8] = b"MATEMAN1";

/// Current manifest framing version.
pub const MANIFEST_VERSION: u32 = 1;

/// Wraps a schema payload in the manifest frame (magic, version, length,
/// CRC).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes a manifest file body, validating magic, version, length, and
/// CRC. Returns the schema payload.
pub fn unframe(data: &[u8]) -> Result<Bytes, StorageError> {
    if data.len() < 20 || &data[..8] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    // panic-exempt: 4-byte subslices of a buffer length-checked (>= 20)
    // above; `try_into` to [u8; 4] cannot fail.
    let version = u32::from_le_bytes(data[8..12].try_into().expect("fixed slice"));
    if version != MANIFEST_VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    // panic-exempt: same fixed-slice invariant as `version` above.
    let len = u32::from_le_bytes(data[12..16].try_into().expect("fixed slice")) as usize;
    // panic-exempt: same fixed-slice invariant as `version` above.
    let crc = u32::from_le_bytes(data[16..20].try_into().expect("fixed slice"));
    if data.len() - 20 != len {
        return Err(StorageError::InvalidLength {
            context: "manifest payload length",
            value: len as u64,
        });
    }
    let payload = &data[20..];
    if crc32(payload) != crc {
        return Err(StorageError::ChecksumMismatch {
            block: "manifest".to_string(),
        });
    }
    Ok(Bytes::from(payload.to_vec()))
}

/// Writes `bytes` to `path` atomically: tmp file + fsync + rename + best-
/// effort directory fsync. Used for manifests and for immutable segment
/// files (which must be fully durable *before* the manifest that references
/// them is renamed into place).
pub fn write_file_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), StorageError> {
    write_file_atomic_vfs(&StdVfs, path.as_ref(), bytes)
}

/// [`write_file_atomic`] through an explicit [`Vfs`] (the engine threads
/// its fault-injectable handle here). Errors carry the path and the step
/// that failed.
pub fn write_file_atomic_vfs(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create(&tmp).io_ctx("creating", &tmp)?;
        f.write_all(bytes).io_ctx("writing", &tmp)?;
        f.sync_all().io_ctx("fsyncing", &tmp)?;
    }
    vfs.rename(&tmp, path).io_ctx("renaming into place", path)?;
    // Make the rename durable. Directory fsync is not available on every
    // platform/filesystem; failing to sync the directory only weakens
    // durability of the *rename* (the file contents are already synced), so
    // this is best-effort by design.
    if let Some(dir) = path.parent() {
        let _ = vfs.sync_dir(dir);
    }
    Ok(())
}

/// Writes a framed manifest payload to `path` atomically.
pub fn save(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), StorageError> {
    save_vfs(&StdVfs, path.as_ref(), payload)
}

/// [`save`] through an explicit [`Vfs`].
pub fn save_vfs(vfs: &dyn Vfs, path: &Path, payload: &[u8]) -> Result<(), StorageError> {
    write_file_atomic_vfs(vfs, path, &frame(payload))
}

/// Reads and unframes a manifest file.
pub fn load(path: impl AsRef<Path>) -> Result<Bytes, StorageError> {
    load_vfs(&StdVfs, path.as_ref())
}

/// [`load`] through an explicit [`Vfs`]. Errors carry the path.
pub fn load_vfs(vfs: &dyn Vfs, path: &Path) -> Result<Bytes, StorageError> {
    unframe(&vfs.read(path).io_ctx("reading", path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"engine state goes here";
        let framed = frame(payload);
        assert_eq!(unframe(&framed).unwrap().as_ref(), payload);
    }

    #[test]
    fn empty_payload_roundtrip() {
        assert_eq!(unframe(&frame(b"")).unwrap().as_ref(), b"");
    }

    #[test]
    fn corruption_detected() {
        let mut framed = frame(b"some payload");
        *framed.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(
            unframe(&framed),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let framed = frame(b"some payload");
        for cut in [0, 7, 19, framed.len() - 1] {
            assert!(unframe(&framed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut framed = frame(b"x");
        framed[0] ^= 0xFF;
        assert!(matches!(unframe(&framed), Err(StorageError::BadMagic)));
        let mut framed = frame(b"x");
        framed[8] = 99;
        assert!(matches!(
            unframe(&framed),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn atomic_save_load() {
        let dir = std::env::temp_dir().join(format!("mate-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST");
        save(&path, b"gen 1").unwrap();
        assert_eq!(load(&path).unwrap().as_ref(), b"gen 1");
        // Replacement is all-or-nothing: a second save fully supersedes.
        save(&path, b"gen 2 with more bytes").unwrap();
        assert_eq!(load(&path).unwrap().as_ref(), b"gen 2 with more bytes");
        // No tmp residue after a clean save.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(dir).ok();
    }
}
