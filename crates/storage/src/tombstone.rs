//! Segment claim sets: which tables a segment owns, with tombstones.
//!
//! The multi-segment engine resolves reads with *newest-wins* semantics at
//! table granularity: every flushed segment records the set of table ids it
//! **claims** — the tables whose postings it carries — and a claim in a
//! newer segment masks the same table's postings in every older one. A claim
//! with a posting count of zero is a **tombstone**: it carries no data but
//! still masks older segments (the table was deleted, or shrank to nothing).
//!
//! Claims are stored sorted by table id and delta-coded, with the live
//! posting count varint-encoded next to each id:
//!
//! ```text
//! count: varint
//! first:  table id (varint), postings (varint)
//! later:  gap-1 to previous id (varint), postings (varint)
//! ```
//!
//! The `gap-1` encoding makes ascending order a *structural* property: any
//! byte stream that decodes yields strictly increasing ids, so readers never
//! need to re-validate sortedness.

use crate::codec::{Reader, Writer};
use crate::error::StorageError;

/// One claim: a table id and the number of live posting entries the segment
/// holds for it (`0` = tombstone).
pub type Claim = (u32, u64);

/// Encodes a claim set. `claims` must be sorted by strictly ascending table
/// id.
///
/// # Panics
/// Panics if the ids are not strictly ascending.
pub fn encode_claims(claims: &[Claim], w: &mut Writer) {
    w.put_varint(claims.len() as u64);
    let mut prev: Option<u32> = None;
    for &(table, postings) in claims {
        match prev {
            None => w.put_varint(u64::from(table)),
            Some(p) => {
                assert!(table > p, "claims must be sorted by ascending table id");
                w.put_varint(u64::from(table - p - 1));
            }
        }
        w.put_varint(postings);
        prev = Some(table);
    }
}

/// Decodes a claim set (always sorted by strictly ascending table id).
pub fn decode_claims(r: &mut Reader) -> Result<Vec<Claim>, StorageError> {
    let n = r.get_varint()? as usize;
    // Every claim costs at least two bytes; reject absurd counts before
    // allocating for them.
    if n > r.remaining() {
        return Err(StorageError::InvalidLength {
            context: "claim count",
            value: n as u64,
        });
    }
    let mut claims = Vec::with_capacity(n);
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let raw = r.get_varint()?;
        let table = match prev {
            None => u32::try_from(raw),
            Some(p) => u32::try_from(u64::from(p) + raw + 1),
        }
        .map_err(|_| StorageError::InvalidLength {
            context: "claim table id",
            value: raw,
        })?;
        let postings = r.get_varint()?;
        claims.push((table, postings));
        prev = Some(table);
    }
    Ok(claims)
}

/// Whether a claim is a tombstone (masks older segments, carries no data).
#[inline]
pub fn is_tombstone(claim: &Claim) -> bool {
    claim.1 == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn roundtrip(claims: &[Claim]) -> Vec<Claim> {
        let mut w = Writer::new();
        encode_claims(claims, &mut w);
        decode_claims(&mut Reader::new(w.finish())).unwrap()
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(roundtrip(&[]), vec![]);
        assert_eq!(roundtrip(&[(7, 123)]), vec![(7, 123)]);
    }

    #[test]
    fn mixed_claims_and_tombstones() {
        let claims = vec![(0, 10), (1, 0), (5, 99), (6, 0), (1000, 1)];
        assert_eq!(roundtrip(&claims), claims);
        assert!(is_tombstone(&(1, 0)));
        assert!(!is_tombstone(&(1, 1)));
    }

    #[test]
    fn dense_range_is_compact() {
        // Consecutive ids cost one byte of gap each (gap-1 = 0).
        let claims: Vec<Claim> = (0..1000u32).map(|t| (t, 1)).collect();
        let mut w = Writer::new();
        encode_claims(&claims, &mut w);
        let bytes = w.finish();
        assert!(
            bytes.len() < 1000 * 3,
            "dense claims blew up: {}",
            bytes.len()
        );
        assert_eq!(decode_claims(&mut Reader::new(bytes)).unwrap(), claims);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_rejected() {
        let mut w = Writer::new();
        encode_claims(&[(5, 1), (3, 1)], &mut w);
    }

    #[test]
    fn oversized_count_rejected() {
        let mut w = Writer::new();
        w.put_varint(1 << 40);
        assert!(decode_claims(&mut Reader::new(w.finish())).is_err());
    }

    #[test]
    fn id_overflow_rejected() {
        let mut w = Writer::new();
        w.put_varint(2);
        w.put_varint(u64::from(u32::MAX)); // first id: u32::MAX
        w.put_varint(0);
        w.put_varint(0); // gap-1 = 0 → next id would be u32::MAX + 1
        w.put_varint(0);
        assert!(decode_claims(&mut Reader::new(w.finish())).is_err());
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let mut w = Writer::new();
        encode_claims(&[(1, 2), (3, 4)], &mut w);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let r = decode_claims(&mut Reader::new(Bytes::from(bytes[..cut].to_vec())));
            if cut < bytes.len() {
                // Prefixes may decode fewer claims or error; never panic.
                let _ = r;
            }
        }
    }
}
