//! LEB128 variable-length integers with zigzag encoding for signed values.
//!
//! Posting lists store table/column/row ids delta-encoded; deltas are small,
//! so varints cut index files to a fraction of fixed-width encoding.

use crate::error::StorageError;
use bytes::{Buf, BufMut};

/// Maximum encoded width of a u64 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` as LEB128 to `buf`.
#[inline]
pub fn write_u64(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 u64 from `buf`.
#[inline]
pub fn read_u64(buf: &mut impl Buf) -> Result<u64, StorageError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(StorageError::UnexpectedEof { context: "varint" });
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(StorageError::VarintOverflow);
        }
        result |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(StorageError::VarintOverflow);
        }
    }
}

/// Appends `value` as LEB128 to `buf` without widening to u64 first —
/// table/column/row ids are u32 throughout the index layer.
#[inline]
pub fn write_u32(buf: &mut impl BufMut, value: u32) {
    write_u64(buf, u64::from(value));
}

/// Reads a LEB128 u32 from `buf`, rejecting values that overflow u32 —
/// callers no longer round-trip through u64 casts plus manual range checks.
#[inline]
pub fn read_u32(buf: &mut impl Buf) -> Result<u32, StorageError> {
    let v = read_u64(buf)?;
    u32::try_from(v).map_err(|_| StorageError::InvalidLength {
        context: "u32 varint",
        value: v,
    })
}

/// Zigzag-maps a signed integer to unsigned so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag-encoded i64.
#[inline]
pub fn write_i64(buf: &mut impl BufMut, value: i64) {
    write_u64(buf, zigzag(value));
}

/// Reads a zigzag-encoded i64.
#[inline]
pub fn read_i64(buf: &mut impl Buf) -> Result<i64, StorageError> {
    Ok(unzigzag(read_u64(buf)?))
}

/// Number of bytes [`write_u64`] will produce for `value`.
#[inline]
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len(v));
        let mut b = buf.freeze();
        read_u64(&mut b).unwrap()
    }

    #[test]
    fn boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
    }

    #[test]
    fn eof_detected() {
        let mut empty = bytes::Bytes::new();
        assert!(matches!(
            read_u64(&mut empty),
            Err(StorageError::UnexpectedEof { .. })
        ));
        // Truncated multi-byte varint.
        let mut b = bytes::Bytes::from_static(&[0x80]);
        assert!(matches!(
            read_u64(&mut b),
            Err(StorageError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn u32_pair_roundtrip_and_range_check() {
        let mut buf = BytesMut::new();
        for v in [0u32, 1, 127, 128, u32::MAX] {
            write_u32(&mut buf, v);
        }
        let mut b = buf.freeze();
        for v in [0u32, 1, 127, 128, u32::MAX] {
            assert_eq!(read_u32(&mut b).unwrap(), v);
        }
        // A u64-range value must be rejected, not truncated.
        let mut buf = BytesMut::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut b = buf.freeze();
        assert!(matches!(
            read_u32(&mut b),
            Err(StorageError::InvalidLength { .. })
        ));
    }

    #[test]
    fn overflow_detected() {
        // 11 continuation bytes is always invalid.
        let mut b = bytes::Bytes::from_static(&[0xff; 11]);
        assert!(matches!(
            read_u64(&mut b),
            Err(StorageError::VarintOverflow)
        ));
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v: u64) {
            prop_assert_eq!(roundtrip(v), v);
        }

        #[test]
        fn prop_i64_roundtrip(v: i64) {
            let mut buf = BytesMut::new();
            write_i64(&mut buf, v);
            let mut b = buf.freeze();
            prop_assert_eq!(read_i64(&mut b).unwrap(), v);
        }

        #[test]
        fn prop_encoded_len_matches(v: u64) {
            let mut buf = BytesMut::new();
            write_u64(&mut buf, v);
            prop_assert_eq!(buf.len(), encoded_len(v));
        }
    }
}
