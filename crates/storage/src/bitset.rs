//! Rice-coded sparse bitmaps (super-key compression, segment format v2).
//!
//! A MATE super key is the OR of one XASH hash per cell of a row; each hash
//! sets a handful of bits, so a row key is a **sparse** bitmap (typically
//! 10–30 of 128 bits). Stored raw that is `bits/8` bytes per row and the
//! single biggest block of an index segment. This module encodes each key
//! as its sorted set-bit positions, gap-encoded with a Rice code whose
//! parameter is derived from the key's own density — no table to store,
//! near the binomial entropy for the sparse keys the lakes produce.
//!
//! ```text
//! key := popcount:u8 payload
//! payload := ε                          (popcount == 0)
//!          | raw words, u64 LE each     (popcount == RAW_MARKER: dense keys)
//!          | rice(gap_0) rice(gap_i)*   (byte-padded to the next boundary)
//! gap_0 := first set-bit position;  gap_i := pos_i - pos_{i-1} - 1
//! rice(g) at parameter k := unary(g >> k) ++ k low bits of g
//! ```
//!
//! The Rice parameter is `k = floor(log2(bits / popcount))`, recomputed
//! identically by the decoder. Keys too dense to win (or with popcount ≥
//! [`RAW_MARKER`]) are stored raw behind a marker byte, so the encoding
//! never loses more than one byte per key.

use crate::codec::{Reader, Writer};
use crate::error::StorageError;

/// Popcount marker for keys stored as raw words.
pub const RAW_MARKER: u8 = 0xFF;

/// Bit-granular appender over a [`Writer`] (LSB-first within bytes).
struct BitWriter<'a> {
    w: &'a mut Writer,
    acc: u64,
    bits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(w: &'a mut Writer) -> Self {
        BitWriter { w, acc: 0, bits: 0 }
    }

    fn push(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 57, "push wider than the accumulator");
        self.acc |= value << self.bits;
        self.bits += nbits;
        while self.bits >= 8 {
            self.w.put_u8((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.bits -= 8;
        }
    }

    fn unary(&mut self, q: u64) {
        // `q` ones then a zero. Emitted in ≤ 32-bit chunks.
        let mut q = q;
        while q >= 32 {
            self.push(u32::MAX as u64, 32);
            q -= 32;
        }
        self.push((1u64 << q) - 1, q as u32 + 1);
    }

    fn finish(mut self) {
        if self.bits > 0 {
            self.w.put_u8((self.acc & 0xff) as u8);
        }
        self.bits = 0;
    }
}

/// Bit-granular reader over a byte slice (LSB-first within bytes).
struct BitReader<'a> {
    data: &'a [u8],
    at: usize,
    acc: u64,
    bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            at: 0,
            acc: 0,
            bits: 0,
        }
    }

    fn fill(&mut self) -> Result<(), StorageError> {
        if self.at >= self.data.len() {
            return Err(StorageError::UnexpectedEof {
                context: "rice bitmap",
            });
        }
        self.acc |= u64::from(self.data[self.at]) << self.bits;
        self.at += 1;
        self.bits += 8;
        Ok(())
    }

    fn take(&mut self, nbits: u32) -> Result<u64, StorageError> {
        while self.bits < nbits {
            self.fill()?;
        }
        let mask = if nbits == 64 {
            u64::MAX
        } else {
            (1 << nbits) - 1
        };
        let v = self.acc & mask;
        self.acc >>= nbits;
        self.bits -= nbits;
        Ok(v)
    }

    fn unary(&mut self) -> Result<u64, StorageError> {
        let mut q = 0u64;
        loop {
            if self.bits == 0 {
                self.fill()?;
            }
            let tz = self.acc.trailing_ones().min(self.bits);
            q += u64::from(tz);
            self.acc >>= tz;
            self.bits -= tz;
            if self.bits > 0 {
                // Consume the terminating zero.
                self.acc >>= 1;
                self.bits -= 1;
                return Ok(q);
            }
        }
    }

    /// Bytes consumed (the current partial byte counts as consumed).
    fn consumed(&self) -> usize {
        self.at
    }
}

/// Rice parameter for a bitmap of `bits` bits with `pop` set bits.
#[inline]
fn rice_k(bits: usize, pop: usize) -> u32 {
    let avg_gap = (bits / pop.max(1)).max(1);
    (usize::BITS - 1).saturating_sub(avg_gap.leading_zeros())
}

/// Appends one bitmap (`words`, fixed width known to the caller) Rice-coded.
pub fn encode_bitmap(words: &[u64], w: &mut Writer) {
    let bits = words.len() * 64;
    let pop: usize = words.iter().map(|x| x.count_ones() as usize).sum();
    debug_assert!(
        bits < RAW_MARKER as usize * 64,
        "bitmap too wide for u8 popcount"
    );
    if pop == 0 {
        w.put_u8(0);
        return;
    }
    let k = rice_k(bits, pop);
    // Estimated Rice size vs raw: fall back when the key is dense. The
    // estimate uses the true encoded size, computed cheaply first.
    let mut est_bits = 0u64;
    {
        let mut prev: i64 = -1;
        for pos in iter_ones(words) {
            let gap = (i64::from(pos) - prev - 1) as u64;
            est_bits += (gap >> k) + 1 + u64::from(k);
            prev = i64::from(pos);
        }
    }
    if pop >= RAW_MARKER as usize || est_bits.div_ceil(8) >= bits as u64 / 8 {
        w.put_u8(RAW_MARKER);
        for &word in words {
            w.put_u64_le(word);
        }
        return;
    }
    w.put_u8(pop as u8);
    let mut bw = BitWriter::new(w);
    let mut prev: i64 = -1;
    for pos in iter_ones(words) {
        let gap = (i64::from(pos) - prev - 1) as u64;
        bw.unary(gap >> k);
        bw.push(gap & ((1 << k) - 1), k);
        prev = i64::from(pos);
    }
    bw.finish();
}

/// Set-bit positions of a word slice, ascending.
fn iter_ones(words: &[u64]) -> impl Iterator<Item = u32> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        let mut rest = word;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let bit = rest.trailing_zeros();
            rest &= rest - 1;
            Some(wi as u32 * 64 + bit)
        })
    })
}

/// Decodes one bitmap of exactly `words.len() * 64` bits into `words`
/// (overwritten) from the reader.
pub fn decode_bitmap(r: &mut Reader, words: &mut [u64]) -> Result<(), StorageError> {
    let bits = words.len() * 64;
    words.fill(0);
    let pop = r.get_u8()?;
    if pop == 0 {
        return Ok(());
    }
    if pop == RAW_MARKER {
        for word in words.iter_mut() {
            *word = r.get_u64_le()?;
        }
        return Ok(());
    }
    let k = rice_k(bits, pop as usize);
    // Borrow the remaining bytes for bit-level reading, then advance the
    // reader past the consumed whole bytes.
    let tail = r.get_raw(r.remaining())?;
    let mut br = BitReader::new(&tail);
    // Position the next set bit would take if its gap were zero. Kept in
    // u64 with a checked add: a corrupt stream can decode an arbitrarily
    // large gap, and that must surface as a typed error, not overflow.
    let mut next: u64 = 0;
    for _ in 0..pop {
        let q = br.unary()?;
        let rem = br.take(k)?;
        let gap = (q << k) | rem;
        let at = next.checked_add(gap).filter(|&at| at < bits as u64).ok_or(
            StorageError::InvalidLength {
                context: "rice bit position",
                value: gap,
            },
        )?;
        let at = at as usize;
        words[at / 64] |= 1u64 << (at % 64);
        next = at as u64 + 1;
    }
    let consumed = br.consumed();
    *r = Reader::new(tail.slice(consumed..));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(words: &[u64]) -> usize {
        let mut w = Writer::new();
        encode_bitmap(words, &mut w);
        let data = w.finish();
        let len = data.len();
        let mut r = Reader::new(data);
        let mut out = vec![0u64; words.len()];
        decode_bitmap(&mut r, &mut out).unwrap();
        assert_eq!(out, words, "roundtrip mismatch");
        assert!(r.is_exhausted(), "trailing bytes");
        len
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(roundtrip(&[0, 0]), 1);
        roundtrip(&[1, 0]);
        roundtrip(&[0, 1 << 63]);
    }

    #[test]
    fn sparse_keys_compress() {
        // 18 of 128 bits — the density the Zipf lakes produce.
        let mut words = [0u64; 2];
        for i in 0..18u32 {
            let pos = (i * 7) % 128;
            words[(pos / 64) as usize] |= 1 << (pos % 64);
        }
        let pop: u32 = words.iter().map(|w| w.count_ones()).sum();
        assert_eq!(pop, 18);
        let len = roundtrip(&words);
        assert!(len < 13, "sparse key should beat raw 16 bytes, got {len}");
    }

    #[test]
    fn dense_keys_fall_back_to_raw() {
        let words = [u64::MAX, u64::MAX ^ 0b1010];
        let len = roundtrip(&words);
        assert_eq!(len, 1 + 16, "dense key stored raw behind the marker");
    }

    #[test]
    fn sequential_keys_share_a_stream() {
        let keys: Vec<[u64; 2]> = (0..50)
            .map(|i| [1u64 << (i % 64) | 0x10, 1u64 << ((i * 7) % 64)])
            .collect();
        let mut w = Writer::new();
        for k in &keys {
            encode_bitmap(k, &mut w);
        }
        let mut r = Reader::new(w.finish());
        let mut out = [0u64; 2];
        for k in &keys {
            decode_bitmap(&mut r, &mut out).unwrap();
            assert_eq!(&out, k);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        encode_bitmap(&[0xdeadbeefu64, 0x1234], &mut w);
        let data = w.finish();
        for cut in 0..data.len() {
            let mut r = Reader::new(data.slice(..cut));
            let mut out = [0u64; 2];
            let _ = decode_bitmap(&mut r, &mut out); // must not panic
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(words in proptest::collection::vec(any::<u64>(), 1..9)) {
            roundtrip(&words);
        }

        #[test]
        fn prop_sparse_roundtrip(positions in proptest::collection::vec(0usize..512, 0..40)) {
            let mut words = [0u64; 8];
            for p in positions {
                words[p / 64] |= 1 << (p % 64);
            }
            roundtrip(&words);
        }
    }
}
