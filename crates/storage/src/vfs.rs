//! The virtual filesystem seam of the storage layer.
//!
//! Every durability-relevant I/O operation of the engine — WAL appends and
//! fsyncs, atomic segment/checkpoint/manifest writes, torn-tail trims,
//! recovery reads, orphan GC — goes through a [`Vfs`] handle instead of
//! calling `std::fs` directly. Two implementations ship:
//!
//! * [`StdVfs`] — the production impl, a zero-cost passthrough to
//!   `std::fs`.
//! * [`FaultVfs`] — a deterministic fault injector for tests: fail the Nth
//!   I/O call, ENOSPC on an append, EIO on an fsync, a *torn* write that
//!   persists only a prefix before failing, or a silent bit-flip on a
//!   read. Faults are armed explicitly ([`FaultVfs::arm`]) and counted
//!   ([`FaultVfs::injected`]), so a test can sweep every I/O call site of
//!   a workload (`for n in 1..=total`) and assert the engine never panics,
//!   never lies about durability, and recovers (or degrades) cleanly.
//!
//! The trait is object-safe and threaded as `Arc<dyn Vfs>`; long-lived
//! file handles (the engine's WAL) are [`VfsFile`] trait objects so the
//! injector can also fault appends and fsyncs on handles opened before the
//! fault was armed.
//!
//! Operations deliberately mirror what the engine's fsync discipline
//! needs, nothing more: whole-file read, positional `pread` (the cold
//! serving path — every [`pager::PageCache`](crate::pager::PageCache)
//! fill, so read faults and bit flips fire on demand-paged probes too),
//! create / append / write-mode open, rename, remove, directory
//! create/sync/list.
//! Anything outside this surface inside `crates/{index,storage}/src` is
//! either test code or carries a `// vfs-exempt:` comment (enforced by
//! `scripts/check_vfs.sh`).

use std::fmt;
use std::io::{self, Read as _, Seek as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A writable file handle obtained from a [`Vfs`].
///
/// The surface matches what the engine's WAL and atomic-write paths use:
/// buffered-append (`write_all`), durability (`sync_data`/`sync_all`),
/// rollback (`set_len`), and handle duplication (`try_clone`, used by the
/// group-commit leader to fsync outside the engine lock).
pub trait VfsFile: Send + Sync {
    /// Appends/writes the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`: makes previously written contents durable.
    fn sync_data(&self) -> io::Result<()>;
    /// `fsync`: contents + metadata.
    fn sync_all(&self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Duplicates the handle (shared cursor/offset, like `dup(2)`).
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>>;
}

/// A filesystem abstraction for durability-critical I/O (see module docs).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads `len` bytes at byte `offset` (short reads at EOF allowed).
    /// This is the page-cache fill primitive: the paged cold tier serves
    /// every probe through it.
    fn pread(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file in append mode (`create` if missing).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file in write mode without truncation (torn-tail
    /// trims: `set_len` + fsync).
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically renames `from` over `to` (POSIX rename semantics).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making renames within it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Lists the file names (not full paths) inside a directory.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Number of faults this vfs has injected (0 for production impls);
    /// surfaced as the engine's `io_errors_injected` stat.
    fn injected_faults(&self) -> u64 {
        0
    }
    /// Connects this vfs to an observability hub: fault-injecting impls
    /// mirror their injection count into the `vfs.faults_injected`
    /// registry counter and emit a `fault_injected` event (with op class
    /// and path) every time a fault fires. Production impls ignore this.
    fn attach_obs(&self, _obs: &Arc<mate_obs::Obs>) {}
}

// ------------------------------------------------------------- StdVfs ----

/// The production [`Vfs`]: a passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl VfsFile for std::fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn sync_data(&self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }
    fn sync_all(&self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        std::fs::File::try_clone(self).map(|f| Box::new(f) as Box<dyn VfsFile>)
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn pread(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(path)?;
        f.seek(io::SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match f.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        std::fs::File::create(path).map(|f| Box::new(f) as Box<dyn VfsFile>)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map(|f| Box::new(f) as Box<dyn VfsFile>)
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map(|f| Box::new(f) as Box<dyn VfsFile>)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(PathBuf::from(entry?.file_name()));
        }
        names.sort();
        Ok(names)
    }
}

// ----------------------------------------------------------- FaultVfs ----

/// Which class of I/O operation a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Any fallible operation.
    Any,
    /// Whole-file and positional reads.
    Read,
    /// Data writes (`write_all` on any handle, whatever it was opened as).
    Write,
    /// `sync_data` / `sync_all` on files and directories.
    Sync,
    /// Metadata operations: create/open, rename, remove, `set_len`,
    /// directory create/list.
    Meta,
}

impl OpClass {
    fn matches(self, op: OpClass) -> bool {
        self == OpClass::Any || self == op
    }
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy)]
pub enum FaultMode {
    /// Fail the operation with this error kind; no side effect.
    Error(io::ErrorKind),
    /// For a write: persist a seed-derived strict prefix of the buffer,
    /// then fail (a torn write). For any other operation class this
    /// degenerates to an EIO error.
    TornWrite {
        /// Determines the persisted prefix length.
        seed: u64,
    },
    /// For a read: succeed but flip one seed-derived bit of the returned
    /// buffer (silent corruption). For any other class: no-op.
    BitFlip {
        /// Determines the flipped bit position.
        seed: u64,
    },
}

/// One armed fault: fires on the `nth` (1-based) operation matching
/// `class`, counted from the moment it was armed.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Operation class the countdown counts.
    pub class: OpClass,
    /// Fire on the nth matching operation (1 = the next one).
    pub nth: u64,
    /// Behavior when firing.
    pub mode: FaultMode,
    /// Keep firing on every later matching operation as well (a full disk
    /// stays full). One-shot when false.
    pub sticky: bool,
}

#[derive(Debug)]
struct Armed {
    fault: Fault,
    remaining: u64,
}

/// The action resolved for one concrete operation.
enum Action {
    Proceed,
    Fail(io::ErrorKind),
    Torn { seed: u64 },
    Flip { seed: u64 },
}

/// A deterministic fault-injecting [`Vfs`] wrapping [`StdVfs`].
///
/// All state is interior (shared with the file handles it vends), so a
/// single `Arc<FaultVfs>` can be threaded through an engine and armed /
/// inspected from the test driving it.
#[derive(Debug, Default)]
pub struct FaultVfs {
    inner: StdVfs,
    ops: AtomicU64,
    injected: AtomicU64,
    armed: Mutex<Vec<Armed>>,
    obs: Mutex<Option<Arc<mate_obs::Obs>>>,
}

impl FaultVfs {
    /// A fault-free injector (arm faults later).
    pub fn new() -> Self {
        FaultVfs::default()
    }

    /// Arms a fault (several may be armed at once).
    pub fn arm(&self, fault: Fault) {
        self.armed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Armed {
                remaining: fault.nth.max(1),
                fault,
            });
    }

    /// Convenience: fail the `n`th fallible operation of any class with a
    /// generic I/O error (the fault-sweep workhorse).
    pub fn fail_nth(&self, n: u64) {
        self.arm(Fault {
            class: OpClass::Any,
            nth: n,
            mode: FaultMode::Error(io::ErrorKind::Other),
            sticky: false,
        });
    }

    /// Convenience: the `n`th write fails with ENOSPC (sticky — a full
    /// disk stays full until [`FaultVfs::disarm_all`]).
    pub fn enospc_on_nth_write(&self, n: u64) {
        self.arm(Fault {
            class: OpClass::Write,
            nth: n,
            mode: FaultMode::Error(io::ErrorKind::StorageFull),
            sticky: true,
        });
    }

    /// Convenience: the `n`th fsync (data or full, file or directory)
    /// fails with EIO.
    pub fn eio_on_nth_sync(&self, n: u64) {
        self.arm(Fault {
            class: OpClass::Sync,
            nth: n,
            mode: FaultMode::Error(io::ErrorKind::Other),
            sticky: false,
        });
    }

    /// Convenience: the `n`th write persists only a seed-derived prefix,
    /// then fails.
    pub fn torn_nth_write(&self, n: u64, seed: u64) {
        self.arm(Fault {
            class: OpClass::Write,
            nth: n,
            mode: FaultMode::TornWrite { seed },
            sticky: false,
        });
    }

    /// Convenience: the `n`th read silently returns one flipped bit.
    pub fn bitflip_nth_read(&self, n: u64, seed: u64) {
        self.arm(Fault {
            class: OpClass::Read,
            nth: n,
            mode: FaultMode::BitFlip { seed },
            sticky: false,
        });
    }

    /// Removes every armed fault (already-injected counts are kept).
    pub fn disarm_all(&self) {
        self.armed.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Total fallible operations observed (the sweep bound: run once
    /// fault-free, read this, then iterate `1..=ops`).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Counts one operation of `op` class against `path` and resolves the
    /// armed faults against it.
    fn check(&self, op: OpClass, path: &Path) -> Action {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock().unwrap_or_else(|e| e.into_inner());
        let mut fired: Option<FaultMode> = None;
        armed.retain_mut(|a| {
            if fired.is_some() || !a.fault.class.matches(op) {
                return true;
            }
            if a.remaining > 1 {
                a.remaining -= 1;
                return true;
            }
            fired = Some(a.fault.mode);
            a.fault.sticky
        });
        drop(armed);
        let Some(mode) = fired else {
            return Action::Proceed;
        };
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &*self.obs.lock().unwrap_or_else(|e| e.into_inner()) {
            obs.counter("vfs.faults_injected").set(self.injected());
            obs.event(
                "fault_injected",
                format!("{:?} {} ({:?})", op, path.display(), mode),
            );
        }
        match (mode, op) {
            (FaultMode::Error(kind), _) => Action::Fail(kind),
            (FaultMode::TornWrite { seed }, OpClass::Write) => Action::Torn { seed },
            (FaultMode::TornWrite { .. }, _) => Action::Fail(io::ErrorKind::Other),
            (FaultMode::BitFlip { seed }, OpClass::Read) => Action::Flip { seed },
            (FaultMode::BitFlip { .. }, _) => Action::Proceed,
        }
    }

    fn injected_err(kind: io::ErrorKind) -> io::Error {
        io::Error::new(kind, "injected fault")
    }
}

/// A file handle vended by [`FaultVfs`]: shares the injector state, so
/// faults armed after the open still hit this handle's writes and fsyncs.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<FaultVfs>,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.check(OpClass::Write, &self.path) {
            Action::Proceed | Action::Flip { .. } => self.inner.write_all(buf),
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            Action::Torn { seed } => {
                // Persist a strict prefix, then fail: the on-disk state a
                // real torn write leaves behind.
                let keep = if buf.is_empty() {
                    0
                } else {
                    (seed as usize) % buf.len()
                };
                self.inner.write_all(&buf[..keep])?;
                let _ = self.inner.sync_data();
                Err(FaultVfs::injected_err(io::ErrorKind::Other))
            }
        }
    }
    fn sync_data(&self) -> io::Result<()> {
        match self.state.check(OpClass::Sync, &self.path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.sync_data(),
        }
    }
    fn sync_all(&self) -> io::Result<()> {
        match self.state.check(OpClass::Sync, &self.path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.sync_all(),
        }
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        match self.state.check(OpClass::Meta, &self.path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.set_len(len),
        }
    }
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.try_clone()?,
            state: Arc::clone(&self.state),
            path: self.path.clone(),
        }))
    }
}

/// [`FaultVfs`] is used through an `Arc` so its vended file handles can
/// share the armed-fault state; this impl forwards the trait through the
/// `Arc` and wraps every handle.
impl Vfs for Arc<FaultVfs> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.check(OpClass::Read, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            Action::Flip { seed } => {
                let mut data = self.inner.read(path)?;
                if !data.is_empty() {
                    let bit = (seed as usize) % (data.len() * 8);
                    data[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(data)
            }
            _ => self.inner.read(path),
        }
    }
    fn pread(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        match self.check(OpClass::Read, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            Action::Flip { seed } => {
                let mut data = self.inner.pread(path, offset, len)?;
                if !data.is_empty() {
                    let bit = (seed as usize) % (data.len() * 8);
                    data[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(data)
            }
            _ => self.inner.pread(path, offset, len),
        }
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.check(OpClass::Meta, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => Ok(Box::new(FaultFile {
                inner: self.inner.create(path)?,
                state: Arc::clone(self),
                path: path.to_path_buf(),
            })),
        }
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.check(OpClass::Meta, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => Ok(Box::new(FaultFile {
                inner: self.inner.open_append(path)?,
                state: Arc::clone(self),
                path: path.to_path_buf(),
            })),
        }
    }
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.check(OpClass::Meta, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => Ok(Box::new(FaultFile {
                inner: self.inner.open_write(path)?,
                state: Arc::clone(self),
                path: path.to_path_buf(),
            })),
        }
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check(OpClass::Meta, from) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.rename(from, to),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Meta, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.remove_file(path),
        }
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Meta, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.create_dir_all(path),
        }
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Sync, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.sync_dir(path),
        }
    }
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        match self.check(OpClass::Meta, path) {
            Action::Fail(kind) => Err(FaultVfs::injected_err(kind)),
            _ => self.inner.read_dir(path),
        }
    }
    fn injected_faults(&self) -> u64 {
        self.injected()
    }
    fn attach_obs(&self, obs: &Arc<mate_obs::Obs>) {
        // Materialize the mirror counter immediately so the metric is
        // enumerable even before any fault fires.
        obs.counter("vfs.faults_injected").set(self.injected());
        *self.obs.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(obs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mate-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = tmpdir("std");
        let vfs = StdVfs;
        let p = dir.join("a.bin");
        let mut f = vfs.create(&p).unwrap();
        f.write_all(b"hello world").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"hello world");
        assert_eq!(vfs.pread(&p, 6, 5).unwrap(), b"world");
        assert_eq!(
            vfs.pread(&p, 6, 100).unwrap(),
            b"world",
            "short read at EOF"
        );
        vfs.rename(&p, &dir.join("b.bin")).unwrap();
        assert_eq!(vfs.read_dir(&dir).unwrap(), vec![PathBuf::from("b.bin")]);
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&dir.join("b.bin")).unwrap();
        assert!(vfs.read(&dir.join("b.bin")).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fault_fail_nth_is_deterministic() {
        let dir = tmpdir("nth");
        let vfs = Arc::new(FaultVfs::new());
        let p = dir.join("x");
        // ops: create(Meta)=1, write=2, read=3
        vfs.fail_nth(2);
        let mut f = vfs.create(&p).unwrap();
        let err = f.write_all(b"data").unwrap_err();
        assert_eq!(err.to_string(), "injected fault");
        assert_eq!(vfs.injected(), 1);
        // One-shot: the next write goes through.
        f.write_all(b"data").unwrap();
        drop(f);
        assert_eq!(vfs.read(&p).unwrap(), b"data");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_write_persists_prefix() {
        let dir = tmpdir("torn");
        let vfs = Arc::new(FaultVfs::new());
        let p = dir.join("x");
        let mut f = vfs.create(&p).unwrap();
        vfs.torn_nth_write(1, 7); // keep 7 % 10 = 7 bytes
        assert!(f.write_all(b"0123456789").is_err());
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"0123456");
        assert_eq!(vfs.injected(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn enospc_is_sticky_and_syncs_fail_eio() {
        let dir = tmpdir("enospc");
        let vfs = Arc::new(FaultVfs::new());
        let mut f = vfs.create(&dir.join("x")).unwrap();
        vfs.enospc_on_nth_write(1);
        for _ in 0..3 {
            let e = f.write_all(b"zz").unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        }
        vfs.disarm_all();
        f.write_all(b"ok").unwrap();
        vfs.eio_on_nth_sync(1);
        assert!(f.sync_data().is_err());
        f.sync_data().unwrap();
        assert_eq!(vfs.injected(), 4);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bitflip_read_corrupts_exactly_one_bit() {
        let dir = tmpdir("flip");
        let vfs = Arc::new(FaultVfs::new());
        let p = dir.join("x");
        std::fs::write(&p, [0u8; 16]).unwrap();
        vfs.bitflip_nth_read(1, 21); // bit 21 of 128
        let data = vfs.read(&p).unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        assert_eq!(data[21 / 8], 1 << (21 % 8));
        // Disarmed after firing: clean read.
        assert_eq!(vfs.read(&p).unwrap(), vec![0u8; 16]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn attached_obs_records_fault_events_with_op_and_path() {
        let dir = tmpdir("obs");
        let vfs = Arc::new(FaultVfs::new());
        let obs = Arc::new(mate_obs::Obs::new());
        Vfs::attach_obs(&vfs, &obs);
        assert_eq!(obs.counter("vfs.faults_injected").get(), 0);
        let p = dir.join("wal");
        let mut f = vfs.create(&p).unwrap();
        vfs.fail_nth(1);
        vfs.eio_on_nth_sync(1);
        assert!(f.write_all(b"rec").is_err());
        assert!(f.sync_data().is_err());
        assert_eq!(obs.counter("vfs.faults_injected").get(), 2);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].kind == "fault_injected");
        assert!(
            events[0].detail.starts_with("Write"),
            "{}",
            events[0].detail
        );
        assert!(events[0].detail.contains("wal"), "{}", events[0].detail);
        assert!(events[1].detail.starts_with("Sync"), "{}", events[1].detail);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cloned_handles_share_fault_state() {
        let dir = tmpdir("clone");
        let vfs = Arc::new(FaultVfs::new());
        let f = vfs.create(&dir.join("x")).unwrap();
        let mut dup = f.try_clone().unwrap();
        vfs.fail_nth(1);
        assert!(dup.write_all(b"x").is_err());
        assert_eq!(vfs.injected(), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
