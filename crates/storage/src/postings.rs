//! Block-compressed posting lists with skip headers (segment format v2).
//!
//! A posting list is a `(table, col, row)` sequence sorted ascending. The v1
//! encoding wrote one varint triple per entry; this module packs lists the
//! way IR systems store inverted files:
//!
//! * **Inline lists** (≤ [`INLINE_MAX`] entries): varint triples with the
//!   table id delta-encoded — block machinery would cost more than it saves
//!   on the long tail of rare values.
//! * **Blocked lists**: entries split into blocks of `block_len` (default
//!   [`DEFAULT_BLOCK_LEN`]). Per block, the three component streams are
//!   **bit-packed** at the block's maximum bit width: table-id deltas
//!   (the first table comes from the skip header), columns, and rows.
//!   A varint triple costs ≥ 24 bits per entry; dense lakes pack the same
//!   entry into 8–16 bits.
//!
//! Every blocked list carries a **skip directory**: per block, the first and
//! last table id plus the payload byte length. A probe that only needs
//! entries of one table (or one slice of the list) consults the directory
//! and decodes just the blocks that overlap — the rest are *skipped* without
//! touching their payload bytes.
//!
//! ```text
//! list            := count:varint body
//! body            := ε                      (count == 0)
//!                  | inline-entries         (count ≤ INLINE_MAX)
//!                  | blocked                (count > INLINE_MAX)
//! inline-entries  := { table-delta:varint col:varint row:varint }*
//! blocked         := block_len:varint skip-dir payloads
//! skip-dir        := { first-table-delta:varint       (block 0: absolute)
//!                      last-minus-first:varint
//!                      payload-bytes:varint }*
//! payloads        := { tables cols rows }*            (one per block)
//! tables          := width:u8 bitpacked(n-1 deltas)   (first from skip dir)
//! cols            := width:u8 bitpacked(n values)
//! rows            := width:u8 bitpacked(n values)
//! ```
//!
//! Block entry counts are implicit: every block holds `block_len` entries
//! except the last, which holds the remainder. Bit-packing is LSB-first.

use crate::codec::Writer;
use crate::error::StorageError;
use crate::varint;

/// One posting entry as raw ids: `(table, col, row)`.
pub type RawPosting = (u32, u32, u32);

/// Entries per block in blocked lists (the encoder parameter; the chosen
/// value is stored in the stream, so readers never assume it).
pub const DEFAULT_BLOCK_LEN: usize = 128;

/// Largest list stored inline (varint triples, no skip directory). Block
/// overhead (~10 bytes of directory + 3 width bytes) only pays for itself
/// once bit-packing can amortize it over enough entries.
pub const INLINE_MAX: usize = 8;

/// Skip-directory entry for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// Table id of the block's first entry.
    pub first_table: u32,
    /// Table id of the block's last entry.
    pub last_table: u32,
    /// Entry index (within the list) of the block's first entry.
    pub first_entry: u32,
    /// Number of entries in the block.
    pub entries: u32,
    /// Byte offset of the block payload, relative to the payload area.
    pub offset: usize,
    /// Byte length of the block payload.
    pub bytes: usize,
}

/// Reusable scratch for probing blocked lists: the parsed skip directory and
/// per-stream unpack buffers. One instance per worker thread amortizes all
/// probe-time allocations.
#[derive(Debug, Default)]
pub struct ListScratch {
    dir: Vec<SkipEntry>,
    tables: Vec<u32>,
    cols: Vec<u32>,
    rows: Vec<u32>,
}

impl ListScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ListScratch::default()
    }
}

/// Block decode counters for one or more probes: how many blocks had their
/// payload decoded vs. how many were bypassed via the skip directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCounters {
    /// Blocks whose payload streams were decoded.
    pub decoded: u64,
    /// Blocks skipped via the skip directory without touching their payload.
    pub skipped: u64,
}

// ------------------------------------------------------------ bit packing --

/// Bits needed to represent `v` (0 for 0).
#[inline]
fn width_of(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// Appends `values` LSB-first at `width` bits each. `width == 0` writes
/// nothing (all values are zero).
fn pack(values: &[u32], width: u32, w: &mut Writer) {
    debug_assert!(width <= 32);
    if width == 0 {
        return;
    }
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for &v in values {
        debug_assert!(width == 32 || u64::from(v) < (1u64 << width));
        acc |= u64::from(v) << bits;
        bits += width;
        while bits >= 8 {
            w.put_u8((acc & 0xff) as u8);
            acc >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        w.put_u8((acc & 0xff) as u8);
    }
}

/// Bytes [`pack`] produces for `n` values at `width` bits.
#[inline]
fn packed_len(n: usize, width: u32) -> usize {
    (n * width as usize).div_ceil(8)
}

/// Reads `n` values of `width` bits from `data`, appending to `out`.
fn unpack(data: &[u8], n: usize, width: u32, out: &mut Vec<u32>) -> Result<(), StorageError> {
    if width == 0 {
        out.resize(out.len() + n, 0);
        return Ok(());
    }
    if width > 32 || data.len() < packed_len(n, width) {
        return Err(StorageError::UnexpectedEof {
            context: "bitpacked stream",
        });
    }
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    let mut at = 0usize;
    let mask: u64 = if width == 32 {
        u32::MAX as u64
    } else {
        (1u64 << width) - 1
    };
    for _ in 0..n {
        while bits < width {
            acc |= u64::from(data[at]) << bits;
            at += 1;
            bits += 8;
        }
        out.push((acc & mask) as u32);
        acc >>= width;
        bits -= width;
    }
    Ok(())
}

// --------------------------------------------------------------- encoding --

/// Appends the v2 encoding of `entries` (sorted ascending) to `w`.
///
/// # Panics
/// Debug-asserts that `entries` is sorted; `block_len` must be ≥ 2.
pub fn encode_list(entries: &[RawPosting], block_len: usize, w: &mut Writer) {
    assert!(block_len >= 2, "block_len must be at least 2");
    debug_assert!(entries.windows(2).all(|p| p[0] < p[1]), "unsorted postings");
    w.put_varint(entries.len() as u64);
    if entries.is_empty() {
        return;
    }
    if entries.len() <= INLINE_MAX {
        let mut prev_table = 0u32;
        for &(t, c, r) in entries {
            w.put_varint_u32(t - prev_table);
            prev_table = t;
            w.put_varint_u32(c);
            w.put_varint_u32(r);
        }
        return;
    }

    w.put_varint(block_len as u64);
    let blocks: Vec<&[RawPosting]> = entries.chunks(block_len).collect();

    // Pass 1: per-block stream widths → exact payload lengths for the skip
    // directory (presized via `varint::encoded_len`, so the directory is
    // written in one forward pass with no back-patching).
    struct Plan {
        tw: u32,
        cw: u32,
        rw: u32,
        bytes: usize,
    }
    let mut plans = Vec::with_capacity(blocks.len());
    let mut dir_bytes = 0usize;
    let mut prev_first = 0u32;
    for block in &blocks {
        let first = block[0].0;
        let last = block[block.len() - 1].0;
        let tw = block
            .windows(2)
            .map(|p| width_of(p[1].0 - p[0].0))
            .max()
            .unwrap_or(0);
        let cw = width_of(block.iter().map(|e| e.1).max().unwrap_or(0));
        let rw = width_of(block.iter().map(|e| e.2).max().unwrap_or(0));
        let bytes = 3
            + packed_len(block.len() - 1, tw)
            + packed_len(block.len(), cw)
            + packed_len(block.len(), rw);
        dir_bytes += varint::encoded_len(u64::from(first - prev_first))
            + varint::encoded_len(u64::from(last - first))
            + varint::encoded_len(bytes as u64);
        prev_first = first;
        plans.push(Plan { tw, cw, rw, bytes });
    }
    w.reserve(dir_bytes + plans.iter().map(|p| p.bytes).sum::<usize>());

    // Skip directory.
    let mut prev_first = 0u32;
    for (block, plan) in blocks.iter().zip(&plans) {
        let first = block[0].0;
        let last = block[block.len() - 1].0;
        w.put_varint(u64::from(first - prev_first));
        w.put_varint(u64::from(last - first));
        w.put_varint(plan.bytes as u64);
        prev_first = first;
    }

    // Block payloads.
    let mut stream: Vec<u32> = Vec::with_capacity(block_len);
    for (block, plan) in blocks.iter().zip(&plans) {
        let before = w.len();
        w.put_u8(plan.tw as u8);
        stream.clear();
        stream.extend(block.windows(2).map(|p| p[1].0 - p[0].0));
        pack(&stream, plan.tw, w);
        w.put_u8(plan.cw as u8);
        stream.clear();
        stream.extend(block.iter().map(|e| e.1));
        pack(&stream, plan.cw, w);
        w.put_u8(plan.rw as u8);
        stream.clear();
        stream.extend(block.iter().map(|e| e.2));
        pack(&stream, plan.rw, w);
        debug_assert_eq!(w.len() - before, plan.bytes);
    }
}

// --------------------------------------------------------------- decoding --

/// A parsed list header: entry count plus, for blocked lists, the skip
/// directory (left in the caller's scratch) and the payload area.
struct Header<'a> {
    count: usize,
    /// `Some(payload)` for blocked lists (directory parsed into scratch),
    /// `None` for inline lists (body is the remaining bytes).
    blocked: Option<&'a [u8]>,
    /// Inline body / blocked payload start.
    body: &'a [u8],
}

/// Varint at the front of `data`, returning `(value, rest)`.
fn take_varint(data: &[u8]) -> Result<(u64, &[u8]), StorageError> {
    let mut slice = data;
    let v = varint::read_u64(&mut slice)?;
    Ok((v, slice))
}

fn parse_header<'a>(
    data: &'a [u8],
    scratch: &mut Vec<SkipEntry>,
) -> Result<Header<'a>, StorageError> {
    scratch.clear();
    let (count, rest) = take_varint(data)?;
    // Entry positions are u32 throughout (ListHandle, SkipEntry), so an
    // attacker-controlled count beyond u32 must fail here — truncating it
    // would make per-block entry counts wrap (possibly to 0) downstream.
    let count = u32::try_from(count).map_err(|_| StorageError::InvalidLength {
        context: "posting count",
        value: count,
    })? as usize;
    if count <= INLINE_MAX {
        return Ok(Header {
            count,
            blocked: None,
            body: rest,
        });
    }
    let (block_len, mut rest) = take_varint(rest)?;
    if block_len < 2 || block_len > u64::from(u32::MAX) {
        return Err(StorageError::InvalidLength {
            context: "posting block length",
            value: block_len,
        });
    }
    let block_len = block_len as usize;
    let nblocks = count.div_ceil(block_len);
    // Each skip entry costs ≥ 3 bytes; reject an impossible directory
    // before walking (and allocating) anything proportional to it.
    if nblocks * 3 > rest.len() {
        return Err(StorageError::UnexpectedEof {
            context: "skip directory",
        });
    }
    let mut prev_first = 0u32;
    let mut offset = 0usize;
    for b in 0..nblocks {
        let (fd, r1) = take_varint(rest)?;
        let (span, r2) = take_varint(r1)?;
        let (bytes, r3) = take_varint(r2)?;
        rest = r3;
        let first = prev_first
            .checked_add(u32::try_from(fd).map_err(|_| StorageError::InvalidLength {
                context: "skip first-table delta",
                value: fd,
            })?)
            .ok_or(StorageError::InvalidLength {
                context: "skip first-table delta",
                value: fd,
            })?;
        let entries = if b + 1 < nblocks {
            block_len
        } else {
            count - (nblocks - 1) * block_len
        };
        scratch.push(SkipEntry {
            first_table: first,
            last_table: first.saturating_add(u32::try_from(span).unwrap_or(u32::MAX)),
            first_entry: (b * block_len) as u32,
            entries: entries as u32,
            offset,
            bytes: bytes as usize,
        });
        prev_first = first;
        offset = offset
            .checked_add(bytes as usize)
            .ok_or(StorageError::InvalidLength {
                context: "skip payload length",
                value: bytes,
            })?;
    }
    // The directory's total payload length must fit the remaining bytes —
    // a corrupt directory must fail here, not panic at block-slice time.
    if offset > rest.len() {
        return Err(StorageError::InvalidLength {
            context: "skip directory span",
            value: offset as u64,
        });
    }
    Ok(Header {
        count,
        blocked: Some(&rest[..offset]),
        body: rest,
    })
}

/// Entry count of the list at `data` without decoding anything else.
pub fn list_count(data: &[u8]) -> Result<usize, StorageError> {
    let (count, _) = take_varint(data)?;
    usize::try_from(count).map_err(|_| StorageError::InvalidLength {
        context: "posting count",
        value: count,
    })
}

/// Decodes the three streams of one block into the scratch buffers.
fn decode_block(
    payload: &[u8],
    entry: &SkipEntry,
    scratch: &mut ListScratch,
) -> Result<(), StorageError> {
    let n = entry.entries as usize;
    let eof = || StorageError::UnexpectedEof {
        context: "posting block payload",
    };
    let block = payload
        .get(entry.offset..entry.offset + entry.bytes)
        .ok_or_else(eof)?;
    scratch.tables.clear();
    scratch.cols.clear();
    scratch.rows.clear();
    let tw = u32::from(*block.first().ok_or_else(eof)?);
    let t_len = packed_len(n - 1, tw);
    scratch.tables.push(entry.first_table);
    unpack(&block[1..], n - 1, tw, &mut scratch.tables)?;
    // Deltas → absolute table ids.
    for i in 1..n {
        scratch.tables[i] = scratch.tables[i].wrapping_add(scratch.tables[i - 1]);
    }
    let at = 1 + t_len;
    let cw = u32::from(*block.get(at).ok_or_else(eof)?);
    let c_len = packed_len(n, cw);
    unpack(&block[at + 1..], n, cw, &mut scratch.cols)?;
    let at = at + 1 + c_len;
    let rw = u32::from(*block.get(at).ok_or_else(eof)?);
    unpack(&block[at + 1..], n, rw, &mut scratch.rows)?;
    Ok(())
}

/// Decodes an inline body of `count` entries, appending to `out`.
fn decode_inline(
    mut body: &[u8],
    count: usize,
    out: &mut Vec<RawPosting>,
) -> Result<(), StorageError> {
    let mut prev_table = 0u32;
    out.reserve(count);
    for _ in 0..count {
        let dt = varint::read_u32(&mut body)?;
        let c = varint::read_u32(&mut body)?;
        let r = varint::read_u32(&mut body)?;
        let t = prev_table
            .checked_add(dt)
            .ok_or(StorageError::InvalidLength {
                context: "posting table delta",
                value: u64::from(dt),
            })?;
        prev_table = t;
        out.push((t, c, r));
    }
    Ok(())
}

/// Fully decodes the list at `data`, appending to `out`.
pub fn decode_list(data: &[u8], out: &mut Vec<RawPosting>) -> Result<(), StorageError> {
    let mut scratch = ListScratch::new();
    let mut counters = BlockCounters::default();
    let header = parse_header(data, &mut scratch.dir)?;
    if header.blocked.is_none() {
        return decode_inline(header.body, header.count, out);
    }
    collect_parsed(&header, &mut scratch, 0, header.count, out, &mut counters)
}

/// Calls `f(table, run_len)` for every maximal run of equal table ids, in
/// list order. Blocked lists decode **only the table streams**; column and
/// row payloads are jumped over via the stream width bytes.
pub fn table_runs(
    data: &[u8],
    scratch: &mut ListScratch,
    f: &mut dyn FnMut(u32, u32),
) -> Result<(), StorageError> {
    let header = parse_header(data, &mut scratch.dir)?;
    if header.count == 0 {
        return Ok(());
    }
    let mut cur: Option<(u32, u32)> = None;
    let push = |table: u32, cur: &mut Option<(u32, u32)>, f: &mut dyn FnMut(u32, u32)| match cur {
        Some((t, n)) if *t == table => *n += 1,
        Some((t, n)) => {
            f(*t, *n);
            *cur = Some((table, 1));
        }
        None => *cur = Some((table, 1)),
    };
    match header.blocked {
        None => {
            let mut body = header.body;
            let mut prev_table = 0u32;
            for _ in 0..header.count {
                let dt = varint::read_u32(&mut body)?;
                let _c = varint::read_u32(&mut body)?;
                let _r = varint::read_u32(&mut body)?;
                prev_table = prev_table
                    .checked_add(dt)
                    .ok_or(StorageError::InvalidLength {
                        context: "posting table delta",
                        value: u64::from(dt),
                    })?;
                push(prev_table, &mut cur, f);
            }
        }
        Some(payload) => {
            for b in 0..scratch.dir.len() {
                let entry = scratch.dir[b];
                // Single-table block: the skip header already proves every
                // entry has `first_table` — no payload touched, and the
                // whole block merges into the current run in one step.
                if entry.first_table == entry.last_table {
                    match &mut cur {
                        Some((t, n)) if *t == entry.first_table => *n += entry.entries,
                        Some((t, n)) => {
                            f(*t, *n);
                            cur = Some((entry.first_table, entry.entries));
                        }
                        None => cur = Some((entry.first_table, entry.entries)),
                    }
                    continue;
                }
                let n = entry.entries as usize;
                let block = payload
                    .get(entry.offset..entry.offset + entry.bytes)
                    .ok_or(StorageError::UnexpectedEof {
                        context: "posting block payload",
                    })?;
                let tw = u32::from(*block.first().ok_or(StorageError::UnexpectedEof {
                    context: "posting block payload",
                })?);
                scratch.tables.clear();
                scratch.tables.push(entry.first_table);
                unpack(&block[1..], n - 1, tw, &mut scratch.tables)?;
                let mut prev = entry.first_table;
                push(prev, &mut cur, f);
                for i in 1..n {
                    prev = prev.wrapping_add(scratch.tables[i]);
                    push(prev, &mut cur, f);
                }
            }
        }
    }
    if let Some((t, n)) = cur {
        f(t, n);
    }
    Ok(())
}

/// Structurally validates the list at `data` without decoding payload
/// streams, returning its entry count. After this succeeds, every probe
/// function on the same bytes is infallible: inline bodies are walked
/// varint-by-varint, and each block's three width bytes are checked to be
/// ≤ 32 and to account for exactly the block's declared byte length.
/// Loaders that serve probes through `expect()` call this once at open.
pub fn validate_list(data: &[u8], scratch: &mut ListScratch) -> Result<usize, StorageError> {
    let header = parse_header(data, &mut scratch.dir)?;
    match header.blocked {
        None => {
            let mut body = header.body;
            let mut prev_table = 0u32;
            for _ in 0..header.count {
                let dt = varint::read_u32(&mut body)?;
                let _c = varint::read_u32(&mut body)?;
                let _r = varint::read_u32(&mut body)?;
                prev_table = prev_table
                    .checked_add(dt)
                    .ok_or(StorageError::InvalidLength {
                        context: "posting table delta",
                        value: u64::from(dt),
                    })?;
            }
            if !body.is_empty() {
                return Err(StorageError::InvalidLength {
                    context: "posting list slack",
                    value: body.len() as u64,
                });
            }
        }
        Some(payload) => {
            // `payload` is the directory's span of `body`; any bytes past
            // it are smuggled slack a strict validator must reject.
            if payload.len() != header.body.len() {
                return Err(StorageError::InvalidLength {
                    context: "posting list slack",
                    value: (header.body.len() - payload.len()) as u64,
                });
            }
            for entry in &scratch.dir {
                let n = entry.entries as usize;
                let block = payload
                    .get(entry.offset..entry.offset + entry.bytes)
                    .ok_or(StorageError::UnexpectedEof {
                        context: "posting block payload",
                    })?;
                let eof = || StorageError::UnexpectedEof {
                    context: "posting block payload",
                };
                let tw = u32::from(*block.first().ok_or_else(eof)?);
                let at = 1 + packed_len(n - 1, tw.min(32));
                let cw = u32::from(*block.get(at).ok_or_else(eof)?);
                let at = at + 1 + packed_len(n, cw.min(32));
                let rw = u32::from(*block.get(at).ok_or_else(eof)?);
                let total = at + 1 + packed_len(n, rw.min(32));
                if tw > 32 || cw > 32 || rw > 32 || total != entry.bytes {
                    return Err(StorageError::InvalidLength {
                        context: "posting block widths",
                        value: entry.bytes as u64,
                    });
                }
            }
        }
    }
    Ok(header.count)
}

/// Decodes entries `[start, start + len)` of the list, appending to `out`.
/// Blocked lists decode only the blocks overlapping the range; the rest are
/// counted as skipped.
pub fn collect_range(
    data: &[u8],
    start: usize,
    len: usize,
    scratch: &mut ListScratch,
    out: &mut Vec<RawPosting>,
    counters: &mut BlockCounters,
) -> Result<(), StorageError> {
    let header = parse_header(data, &mut scratch.dir)?;
    if start + len > header.count {
        return Err(StorageError::InvalidLength {
            context: "posting range",
            value: (start + len) as u64,
        });
    }
    collect_parsed(&header, scratch, start, len, out, counters)
}

fn collect_parsed(
    header: &Header<'_>,
    scratch: &mut ListScratch,
    start: usize,
    len: usize,
    out: &mut Vec<RawPosting>,
    counters: &mut BlockCounters,
) -> Result<(), StorageError> {
    if len == 0 {
        return Ok(());
    }
    let Some(payload) = header.blocked else {
        // Inline: decode all (tiny) and slice the range.
        let mut all = Vec::with_capacity(header.count);
        decode_inline(header.body, header.count, &mut all)?;
        out.extend_from_slice(&all[start..start + len]);
        return Ok(());
    };
    let end = start + len;
    out.reserve(len);
    // scratch.dir is parsed; iterate blocks, skipping non-overlapping ones.
    for b in 0..scratch.dir.len() {
        let entry = scratch.dir[b];
        let b_start = entry.first_entry as usize;
        let b_end = b_start + entry.entries as usize;
        if b_end <= start || b_start >= end {
            counters.skipped += 1;
            continue;
        }
        counters.decoded += 1;
        decode_block(payload, &entry, scratch)?;
        let lo = start.max(b_start) - b_start;
        let hi = end.min(b_end) - b_start;
        for i in lo..hi {
            out.push((scratch.tables[i], scratch.cols[i], scratch.rows[i]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn encode(entries: &[RawPosting], block_len: usize) -> Vec<u8> {
        let mut w = Writer::new();
        encode_list(entries, block_len, &mut w);
        w.finish().to_vec()
    }

    fn roundtrip(entries: &[RawPosting], block_len: usize) {
        let data = encode(entries, block_len);
        assert_eq!(list_count(&data).unwrap(), entries.len());
        let mut out = Vec::new();
        decode_list(&data, &mut out).unwrap();
        assert_eq!(out, entries);
    }

    fn make(n: usize, tables: u32) -> Vec<RawPosting> {
        let mut v: Vec<RawPosting> = (0..n as u32)
            .map(|i| (i % tables, (i * 7) % 13, i * 3 % 977))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn bitpack_roundtrip_all_widths() {
        for width in 0..=32u32 {
            let max: u32 = if width == 32 {
                u32::MAX
            } else {
                (1u64 << width) as u32 - 1
            };
            let values: Vec<u32> = (0..67).map(|i| max.wrapping_sub(i * 31) & max).collect();
            let mut w = Writer::new();
            pack(&values, width, &mut w);
            let data = w.finish();
            assert_eq!(data.len(), packed_len(values.len(), width));
            let mut out = Vec::new();
            unpack(&data, values.len(), width, &mut out).unwrap();
            assert_eq!(out, values);
        }
    }

    #[test]
    fn empty_and_inline_lists() {
        roundtrip(&[], 128);
        roundtrip(&[(0, 0, 0)], 128);
        roundtrip(&[(3, 1, 2), (9, 0, 0), (9, 0, 1)], 128);
        let exactly_inline = make(INLINE_MAX, 3);
        roundtrip(&exactly_inline, 128);
    }

    #[test]
    fn blocked_lists_roundtrip() {
        for n in [INLINE_MAX + 1, 100, 128, 129, 1000] {
            for tables in [1, 2, 50] {
                roundtrip(&make(n, tables), 128);
                roundtrip(&make(n, tables), 16);
            }
        }
    }

    #[test]
    fn collect_range_matches_slice() {
        let entries = make(500, 37);
        let data = encode(&entries, 64);
        let mut scratch = ListScratch::new();
        let mut counters = BlockCounters::default();
        for (start, len) in [(0, 500), (0, 1), (499, 1), (100, 64), (63, 130), (250, 0)] {
            let mut out = Vec::new();
            collect_range(&data, start, len, &mut scratch, &mut out, &mut counters).unwrap();
            assert_eq!(out, &entries[start..start + len], "range {start}+{len}");
        }
    }

    #[test]
    fn collect_range_skips_blocks() {
        let entries = make(640, 17); // 10 blocks of 64
        let data = encode(&entries, 64);
        let mut scratch = ListScratch::new();
        let mut counters = BlockCounters::default();
        let mut out = Vec::new();
        collect_range(&data, 320, 10, &mut scratch, &mut out, &mut counters).unwrap();
        assert_eq!(counters.decoded, 1);
        assert_eq!(counters.skipped, 9);
        assert_eq!(out, &entries[320..330]);
    }

    #[test]
    fn table_runs_match_decoded() {
        for (n, tables, block) in [(5, 2, 128), (300, 7, 64), (640, 1, 64), (129, 129, 128)] {
            let entries = make(n, tables);
            let data = encode(&entries, block);
            let mut scratch = ListScratch::new();
            let mut runs = Vec::new();
            table_runs(&data, &mut scratch, &mut |t, len| runs.push((t, len))).unwrap();
            // Expected: maximal runs of the decoded sequence.
            let mut expect: Vec<(u32, u32)> = Vec::new();
            for e in &entries {
                match expect.last_mut() {
                    Some((t, n)) if *t == e.0 => *n += 1,
                    _ => expect.push((e.0, 1)),
                }
            }
            assert_eq!(runs, expect, "n={n} tables={tables}");
            assert_eq!(
                runs.iter().map(|&(_, n)| n as usize).sum::<usize>(),
                entries.len()
            );
        }
    }

    #[test]
    fn validate_list_accepts_real_and_rejects_crafted() {
        let mut scratch = ListScratch::new();
        for n in [0, 1, INLINE_MAX, 100, 640] {
            let entries = make(n, 7);
            let data = encode(&entries, 64);
            assert_eq!(validate_list(&data, &mut scratch).unwrap(), entries.len());
        }
        // Crafted blocked list with an impossible stream width: flip the
        // first width byte of the first block payload to 33.
        let entries = make(100, 7);
        let mut data = encode(&entries, 64);
        // Locate the payload start by re-parsing the header.
        let header_len = {
            let mut dir = Vec::new();
            let before = data.len();
            let h = super::parse_header(&data, &mut dir).unwrap();
            before - h.body.len()
        };
        data[header_len] = 33;
        assert!(validate_list(&data, &mut scratch).is_err());
        // Truncations never validate (or at least never panic).
        let data = encode(&make(300, 9), 64);
        for cut in 0..data.len() {
            let _ = validate_list(&data[..cut], &mut scratch);
        }
    }

    #[test]
    fn oversized_count_and_block_len_rejected() {
        // count = 2^32 + 9 with block_len = 2^32: naive truncation would
        // give the first block 0 entries and underflow `n - 1` downstream.
        let mut w = Writer::new();
        w.put_varint((1u64 << 32) + 9);
        w.put_varint(1u64 << 32);
        w.put_raw(&[0u8; 64]);
        let data = w.finish();
        let mut scratch = ListScratch::new();
        assert!(matches!(
            validate_list(&data, &mut scratch),
            Err(StorageError::InvalidLength { .. })
        ));
        let mut out = Vec::new();
        assert!(decode_list(&data, &mut out).is_err());
        // In-range count with an absurd block_len fails on the block_len.
        let mut w = Writer::new();
        w.put_varint(100);
        w.put_varint(1u64 << 32);
        w.put_raw(&[0u8; 64]);
        assert!(validate_list(&w.finish(), &mut scratch).is_err());
        // An impossible directory (count implies more skip entries than
        // bytes) fails before allocating anything proportional to it.
        let mut w = Writer::new();
        w.put_varint(u32::MAX as u64);
        w.put_varint(2);
        w.put_raw(&[0u8; 16]);
        assert!(matches!(
            validate_list(&w.finish(), &mut scratch),
            Err(StorageError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_slack_rejected_by_validate() {
        let mut scratch = ListScratch::new();
        for n in [3, 50] {
            let entries = make(n, 5);
            let mut data = encode(&entries, 16);
            data.push(0xAB); // one smuggled byte after the list
            assert!(
                matches!(
                    validate_list(&data, &mut scratch),
                    Err(StorageError::InvalidLength { .. })
                ),
                "slack after a {n}-entry list must not validate"
            );
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let entries = make(100, 5);
        let data = encode(&entries, 32);
        let mut scratch = ListScratch::new();
        let mut counters = BlockCounters::default();
        let mut out = Vec::new();
        assert!(matches!(
            collect_range(&data, 90, 20, &mut scratch, &mut out, &mut counters),
            Err(StorageError::InvalidLength { .. })
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let entries = make(300, 9);
        let data = encode(&entries, 64);
        let mut out = Vec::new();
        for cut in 0..data.len() {
            out.clear();
            // Must return an error (or, for cuts inside trailing zero-width
            // padding, possibly succeed) — never panic.
            let _ = decode_list(&data[..cut], &mut out);
            let mut scratch = ListScratch::new();
            let _ = table_runs(&data[..cut], &mut scratch, &mut |_, _| {});
        }
    }

    #[test]
    fn compresses_vs_varint_triples() {
        // A dense lake-like list: many entries, few distinct tables.
        let entries = make(4000, 40);
        let v2 = encode(&entries, DEFAULT_BLOCK_LEN).len();
        // v1-style: varint table delta + col + row per entry.
        let mut w = Writer::new();
        let mut prev = 0u32;
        for &(t, c, r) in &entries {
            w.put_varint(u64::from(t - prev));
            prev = t;
            w.put_varint(u64::from(c));
            w.put_varint(u64::from(r));
        }
        let v1 = w.len();
        assert!(
            (v2 as f64) < (v1 as f64) * 0.6,
            "v2 {v2} should be well under v1 {v1}"
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip(raw in proptest::collection::vec((0u32..200, 0u32..32, 0u32..5000), 0..600),
                          block_len in 2usize..200) {
            let mut entries = raw;
            entries.sort_unstable();
            entries.dedup();
            let data = encode(&entries, block_len);
            let mut out = Vec::new();
            decode_list(&data, &mut out).unwrap();
            prop_assert_eq!(&out, &entries);
            // Ranges agree with slices.
            if !entries.is_empty() {
                let mid = entries.len() / 2;
                let mut scratch = ListScratch::new();
                let mut counters = BlockCounters::default();
                let mut ranged = Vec::new();
                collect_range(&data, mid, entries.len() - mid, &mut scratch, &mut ranged, &mut counters).unwrap();
                prop_assert_eq!(&ranged, &entries[mid..]);
            }
        }
    }
}
