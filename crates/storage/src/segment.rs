//! The segment file container.
//!
//! Layout:
//!
//! ```text
//! magic "MATESEG1" (8 bytes)
//! version: u32 LE
//! block count: varint
//! per block:
//!   name: varint-prefixed string
//!   payload length: varint
//!   crc32 of (name ++ length:u64 LE ++ payload): u32 LE
//!   payload bytes
//! ```
//!
//! Blocks are named so readers can evolve independently of writers; every
//! payload is CRC-checked on access. The CRC covers the block *name and
//! length* as well as the payload: a bit flip in the framing would otherwise
//! make the reader checksum a different byte range, and for degenerate
//! payloads (e.g. all zeros, where the CRC register cycles under zero input)
//! a payload-only checksum can collide. Covering the length guarantees any
//! single-bit framing flip changes the CRC input prefix, which a CRC always
//! detects.

use crate::codec::{Reader, Writer};
use crate::error::{IoCtx, StorageError};
use crate::vfs::Vfs;
use bytes::Bytes;
use std::path::Path;

const MAGIC: &[u8; 8] = b"MATESEG1";

/// Window [`verify_segment_file`] preads per block header (name + length +
/// CRC). Far larger than any real header; a header that does not fit is
/// reported as corrupt.
const HEADER_PROBE: usize = 1024;

/// Block checksum covering name, length, and payload (see module docs).
fn block_crc(name: &str, payload: &[u8]) -> u32 {
    let mut c = crate::crc32::Crc32::new();
    c.write(name.as_bytes());
    c.write(&(payload.len() as u64).to_le_bytes());
    c.write(payload);
    c.finish()
}
/// Current format version (written by [`SegmentWriter`]).
///
/// Version 2 introduced the block-compressed posting-list payloads (see
/// [`crate::postings`]); the container layout itself is unchanged, and
/// readers accept both versions — v1 segments stay readable behind this tag.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version [`SegmentReader`] still accepts.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Accumulates named blocks and serializes them into a segment.
#[derive(Debug, Default)]
pub struct SegmentWriter {
    blocks: Vec<(String, Bytes)>,
}

impl SegmentWriter {
    /// Creates an empty segment writer.
    pub fn new() -> Self {
        SegmentWriter::default()
    }

    /// Adds a named block.
    pub fn add_block(&mut self, name: impl Into<String>, payload: Bytes) {
        self.blocks.push((name.into(), payload));
    }

    /// Serializes the segment to a byte buffer.
    pub fn finish(self) -> Bytes {
        let mut w = Writer::with_capacity(
            16 + self
                .blocks
                .iter()
                .map(|(n, p)| n.len() + p.len() + 16)
                .sum::<usize>(),
        );
        w.put_raw(MAGIC);
        w.put_u32_le(FORMAT_VERSION);
        w.put_varint(self.blocks.len() as u64);
        for (name, payload) in &self.blocks {
            w.put_str(name);
            w.put_varint(payload.len() as u64);
            w.put_u32_le(block_crc(name, payload));
            w.put_raw(payload);
        }
        w.finish()
    }

    /// Serializes and writes the segment to a file (no fsync — tooling
    /// convenience, not a durability path; the engine's durable segment
    /// writes go through `manifest::write_file_atomic_vfs`). Routed through
    /// the [`Vfs`] seam so fault sweeps cover tool-path writes too.
    pub fn write_to(self, vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<(), StorageError> {
        let path = path.as_ref();
        let mut f = vfs.create(path).io_ctx("creating", path)?;
        f.write_all(&self.finish()).io_ctx("writing", path)?;
        Ok(())
    }
}

/// Parses a segment and provides checked access to its blocks.
#[derive(Debug)]
pub struct SegmentReader {
    version: u32,
    /// Per block: name, stored CRC, payload, payload's byte offset in the
    /// original buffer/file (for paged extent reads).
    blocks: Vec<(String, u32, Bytes, usize)>,
}

impl SegmentReader {
    /// Parses a segment from bytes, validating magic and version.
    pub fn open(data: Bytes) -> Result<Self, StorageError> {
        let total = data.len();
        let mut r = Reader::new(data);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.get_u8().map_err(|_| StorageError::BadMagic)?;
        }
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = r.get_u32_le()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let n = r.get_varint()? as usize;
        let mut blocks = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = r.get_str()?;
            let len = r.get_varint()? as usize;
            let crc = r.get_u32_le()?;
            // Validate the directory entry against the buffer *before*
            // slicing: a declared length beyond the remaining bytes means a
            // truncated or corrupt file, reported as a structured error (the
            // reader must never panic on untrusted input).
            if len > r.remaining() {
                return Err(StorageError::InvalidLength {
                    context: "segment block length",
                    value: len as u64,
                });
            }
            let offset = total - r.remaining();
            let payload = r.get_raw(len)?;
            blocks.push((name, crc, payload, offset));
        }
        Ok(SegmentReader { version, blocks })
    }

    /// Format version the segment was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Reads and parses a segment from a file through the [`Vfs`] seam
    /// (read-only tooling entry point; the engine opens segments from
    /// bytes it read through its own handle).
    pub fn open_file(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path = path.as_ref();
        let data = vfs.read(path).io_ctx("reading", path)?;
        SegmentReader::open(Bytes::from(data))
    }

    /// Names of the contained blocks, in file order.
    pub fn block_names(&self) -> Vec<&str> {
        self.blocks.iter().map(|(n, ..)| n.as_str()).collect()
    }

    /// Returns a block payload after verifying its CRC.
    pub fn block(&self, name: &str) -> Result<Bytes, StorageError> {
        let (stored_name, crc, payload, _) = self
            .blocks
            .iter()
            .find(|(n, ..)| n == name)
            .ok_or_else(|| StorageError::MissingBlock(name.to_string()))?;
        if block_crc(stored_name, payload) != *crc {
            return Err(StorageError::ChecksumMismatch {
                block: name.to_string(),
            });
        }
        Ok(payload.clone())
    }

    /// Byte offset of `name`'s payload within the segment file, for
    /// resolving validated in-block slices into paged extent reads.
    pub fn block_offset(&self, name: &str) -> Result<u64, StorageError> {
        self.blocks
            .iter()
            .find(|(n, ..)| n == name)
            .map(|(_, _, _, off)| *off as u64)
            .ok_or_else(|| StorageError::MissingBlock(name.to_string()))
    }
}

/// Verifies a segment file's framing and every block CRC without ever
/// materializing the whole file: headers and payloads are read in
/// `chunk`-byte preads and checksummed streamingly. Returns every block's
/// name in file order; blocks named in `keep` also carry their
/// materialized payload (so callers can run cheap cross-checks and block-
/// presence checks without a second pass).
///
/// Any framing damage — bad magic, truncated header or payload, a length
/// past end-of-file — surfaces as the same typed errors [`SegmentReader`]
/// produces, so callers can treat every `Err` as "segment corrupt".
pub fn verify_segment_file(
    vfs: &dyn Vfs,
    path: &Path,
    chunk: usize,
    keep: &[&str],
) -> Result<Vec<(String, Option<Bytes>)>, StorageError> {
    let chunk = chunk.max(64);
    let head = vfs
        .pread(path, 0, HEADER_PROBE)
        .io_ctx("pread-verifying", path)?;
    let head_len = head.len();
    let mut r = Reader::new(Bytes::from(head));
    let mut magic = [0u8; 8];
    for b in &mut magic {
        *b = r.get_u8().map_err(|_| StorageError::BadMagic)?;
    }
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = r.get_u32_le()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let n = r.get_varint()? as usize;
    let mut pos = (head_len - r.remaining()) as u64;
    let mut blocks = Vec::new();
    for _ in 0..n {
        let hdr = vfs
            .pread(path, pos, HEADER_PROBE)
            .io_ctx("pread-verifying", path)?;
        let hdr_len = hdr.len();
        let mut r = Reader::new(Bytes::from(hdr));
        let name = r.get_str()?;
        let len = r.get_varint()? as usize;
        let crc = r.get_u32_le()?;
        pos += (hdr_len - r.remaining()) as u64;
        let mut c = crate::crc32::Crc32::new();
        c.write(name.as_bytes());
        c.write(&(len as u64).to_le_bytes());
        let mut body = if keep.contains(&name.as_str()) {
            Some(Vec::with_capacity(len))
        } else {
            None
        };
        let mut remaining = len;
        while remaining > 0 {
            let want = remaining.min(chunk);
            let part = vfs.pread(path, pos, want).io_ctx("pread-verifying", path)?;
            if part.len() < want {
                return Err(StorageError::UnexpectedEof {
                    context: "segment block payload (truncated file)",
                });
            }
            c.write(&part);
            if let Some(b) = body.as_mut() {
                b.extend_from_slice(&part);
            }
            pos += want as u64;
            remaining -= want;
        }
        if c.finish() != crc {
            return Err(StorageError::ChecksumMismatch { block: name });
        }
        blocks.push((name, body.map(Bytes::from)));
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment() -> Bytes {
        let mut sw = SegmentWriter::new();
        sw.add_block("meta", Bytes::from_static(b"hello"));
        sw.add_block("data", Bytes::from(vec![1u8, 2, 3, 4]));
        sw.finish()
    }

    #[test]
    fn roundtrip() {
        let seg = SegmentReader::open(sample_segment()).unwrap();
        assert_eq!(seg.block_names(), vec!["meta", "data"]);
        assert_eq!(seg.block("meta").unwrap().as_ref(), b"hello");
        assert_eq!(seg.block("data").unwrap().as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    fn missing_block() {
        let seg = SegmentReader::open(sample_segment()).unwrap();
        assert!(matches!(
            seg.block("nope"),
            Err(StorageError::MissingBlock(_))
        ));
    }

    #[test]
    fn bad_magic() {
        assert!(matches!(
            SegmentReader::open(Bytes::from_static(b"NOTMAGIC\x01\x00\x00\x00")),
            Err(StorageError::BadMagic)
        ));
        assert!(matches!(
            SegmentReader::open(Bytes::from_static(b"x")),
            Err(StorageError::BadMagic)
        ));
    }

    #[test]
    fn corruption_detected() {
        let mut raw = sample_segment().to_vec();
        // Flip a byte inside the "hello" payload (find it).
        let pos = raw.windows(5).position(|w| w == b"hello").unwrap();
        raw[pos] ^= 0xFF;
        let seg = SegmentReader::open(Bytes::from(raw)).unwrap();
        assert!(matches!(
            seg.block("meta"),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        // The other block is still intact.
        assert!(seg.block("data").is_ok());
    }

    #[test]
    fn truncation_detected() {
        let raw = sample_segment();
        let truncated = raw.slice(..raw.len() - 3);
        assert!(SegmentReader::open(truncated).is_err());
    }

    #[test]
    fn v1_container_still_readable() {
        let mut raw = sample_segment().to_vec();
        raw[8] = 1; // version LE byte 0 → a v1-era file
        let seg = SegmentReader::open(Bytes::from(raw)).unwrap();
        assert_eq!(seg.version(), 1);
        assert_eq!(seg.block("meta").unwrap().as_ref(), b"hello");
    }

    #[test]
    fn oversized_block_length_rejected_cleanly() {
        // Directory claims a payload far past the end of the buffer.
        let mut w = crate::codec::Writer::new();
        w.put_raw(MAGIC);
        w.put_u32_le(FORMAT_VERSION);
        w.put_varint(1); // one block
        w.put_str("big");
        w.put_varint(1 << 40); // absurd length
        w.put_u32_le(0);
        assert!(matches!(
            SegmentReader::open(w.finish()),
            Err(StorageError::InvalidLength { .. })
        ));
    }

    #[test]
    fn wrong_version() {
        let mut raw = sample_segment().to_vec();
        raw[8] = 99; // version LE byte 0
        assert!(matches!(
            SegmentReader::open(Bytes::from(raw)),
            Err(StorageError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mate-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        let mut sw = SegmentWriter::new();
        sw.add_block("b", Bytes::from_static(b"payload"));
        sw.write_to(&crate::vfs::StdVfs, &path).unwrap();
        let seg = SegmentReader::open_file(&crate::vfs::StdVfs, &path).unwrap();
        assert_eq!(seg.block("b").unwrap().as_ref(), b"payload");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_entry_points_route_through_the_vfs_seam() {
        use crate::vfs::FaultVfs;
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("mate-seg-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        let vfs = Arc::new(FaultVfs::new());
        let mk = || {
            let mut sw = SegmentWriter::new();
            sw.add_block("b", Bytes::from_static(b"payload"));
            sw
        };
        vfs.fail_nth(1);
        assert!(mk().write_to(&vfs, &path).is_err(), "write fault injected");
        mk().write_to(&vfs, &path).unwrap();
        vfs.fail_nth(1);
        assert!(
            SegmentReader::open_file(&vfs, &path).is_err(),
            "read fault injected"
        );
        let seg = SegmentReader::open_file(&vfs, &path).unwrap();
        assert_eq!(seg.block("b").unwrap().as_ref(), b"payload");
        assert_eq!(vfs.injected(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn block_offsets_locate_payloads() {
        let raw = sample_segment();
        let seg = SegmentReader::open(raw.clone()).unwrap();
        let off = seg.block_offset("meta").unwrap() as usize;
        assert_eq!(&raw[off..off + 5], b"hello");
        let off = seg.block_offset("data").unwrap() as usize;
        assert_eq!(&raw[off..off + 4], &[1, 2, 3, 4]);
        assert!(matches!(
            seg.block_offset("nope"),
            Err(StorageError::MissingBlock(_))
        ));
    }

    #[test]
    fn streaming_verify_matches_whole_file_reader() {
        let dir = std::env::temp_dir().join(format!("mate-seg-verify-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        let mut sw = SegmentWriter::new();
        sw.add_block("meta", Bytes::from_static(b"hello"));
        sw.add_block("data", Bytes::from(vec![7u8; 5000]));
        sw.write_to(&crate::vfs::StdVfs, &path).unwrap();
        // Tiny chunk: payloads span many preads.
        let blocks = verify_segment_file(&crate::vfs::StdVfs, &path, 64, &["meta"]).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, "meta");
        assert_eq!(blocks[0].1.as_deref(), Some(b"hello".as_slice()));
        assert_eq!(blocks[1].0, "data");
        assert_eq!(blocks[1].1, None, "non-kept payloads stay unmaterialized");
        // Corrupt one payload byte: the verify fails with a checksum error.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            verify_segment_file(&crate::vfs::StdVfs, &path, 64, &[]),
            Err(StorageError::ChecksumMismatch { ref block }) if block == "data"
        ));
        // Truncate mid-payload: typed EOF, no panic.
        raw.truncate(raw.len() - 100);
        std::fs::write(&path, &raw).unwrap();
        assert!(verify_segment_file(&crate::vfs::StdVfs, &path, 64, &[]).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_segment() {
        let seg = SegmentReader::open(SegmentWriter::new().finish()).unwrap();
        assert!(seg.block_names().is_empty());
    }
}
