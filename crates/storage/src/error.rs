//! Storage error type.

use std::fmt;

/// Errors raised while encoding, decoding, or validating stored data.
#[derive(Debug)]
pub enum StorageError {
    /// The input ended before a complete value could be decoded.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// A varint ran past its maximum width (corrupt data).
    VarintOverflow,
    /// A length prefix or id was out of the valid range.
    InvalidLength {
        /// What was being decoded.
        context: &'static str,
        /// The offending length/id.
        value: u64,
    },
    /// A CRC check failed.
    ChecksumMismatch {
        /// Block name whose checksum failed.
        block: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file has an unsupported format version.
    UnsupportedVersion(u32),
    /// A required named block is missing from a segment.
    MissingBlock(String),
    /// Invalid UTF-8 in a stored string.
    InvalidUtf8,
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            StorageError::VarintOverflow => write!(f, "varint exceeds 10 bytes"),
            StorageError::InvalidLength { context, value } => {
                write!(f, "invalid length {value} while decoding {context}")
            }
            StorageError::ChecksumMismatch { block } => {
                write!(f, "checksum mismatch in block '{block}'")
            }
            StorageError::BadMagic => write!(f, "bad magic bytes (not a MATE segment file)"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::MissingBlock(b) => write!(f, "missing required block '{b}'"),
            StorageError::InvalidUtf8 => write!(f, "invalid UTF-8 in stored string"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(StorageError, &str)> = vec![
            (StorageError::UnexpectedEof { context: "plist" }, "plist"),
            (StorageError::VarintOverflow, "varint"),
            (StorageError::BadMagic, "magic"),
            (StorageError::UnsupportedVersion(9), "9"),
            (StorageError::MissingBlock("tables".into()), "tables"),
            (StorageError::InvalidUtf8, "UTF-8"),
            (
                StorageError::ChecksumMismatch { block: "b".into() },
                "checksum",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
