//! Storage error type.

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors raised while encoding, decoding, or validating stored data.
#[derive(Debug)]
pub enum StorageError {
    /// The input ended before a complete value could be decoded.
    UnexpectedEof {
        /// What was being decoded.
        context: &'static str,
    },
    /// A varint ran past its maximum width (corrupt data).
    VarintOverflow,
    /// A length prefix or id was out of the valid range.
    InvalidLength {
        /// What was being decoded.
        context: &'static str,
        /// The offending length/id.
        value: u64,
    },
    /// A CRC check failed.
    ChecksumMismatch {
        /// Block name whose checksum failed.
        block: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file has an unsupported format version.
    UnsupportedVersion(u32),
    /// A required named block is missing from a segment.
    MissingBlock(String),
    /// Invalid UTF-8 in a stored string.
    InvalidUtf8,
    /// Underlying I/O error.
    Io(std::io::Error),
    /// An I/O error with file and operation context (what failed, where —
    /// see [`IoCtx`]): `while fsyncing wal-00000012.log: ...`.
    IoAt {
        /// The operation in progress, gerund form ("fsyncing", "reading").
        op: &'static str,
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The engine is in degraded read-only mode: an unhealable storage
    /// fault was detected (or durability became unknowable) and write
    /// paths refuse rather than risk committing unverifiable state. Reads
    /// keep serving from memory.
    Degraded {
        /// Why the engine degraded.
        reason: String,
    },
}

/// Attaches operation + path context to raw `std::io` results, turning
/// them into [`StorageError::IoAt`] — so a degraded-mode report says
/// *which* file failed *how* (`while fsyncing wal-00000012.log: ...`)
/// instead of a bare OS error.
pub trait IoCtx<T> {
    /// Wraps the error with the operation (gerund form) and target path.
    fn io_ctx(self, op: &'static str, path: &Path) -> Result<T, StorageError>;
}

impl<T> IoCtx<T> for std::io::Result<T> {
    fn io_ctx(self, op: &'static str, path: &Path) -> Result<T, StorageError> {
        self.map_err(|source| StorageError::IoAt {
            op,
            path: path.to_path_buf(),
            source,
        })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            StorageError::VarintOverflow => write!(f, "varint exceeds 10 bytes"),
            StorageError::InvalidLength { context, value } => {
                write!(f, "invalid length {value} while decoding {context}")
            }
            StorageError::ChecksumMismatch { block } => {
                write!(f, "checksum mismatch in block '{block}'")
            }
            StorageError::BadMagic => write!(f, "bad magic bytes (not a MATE segment file)"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::MissingBlock(b) => write!(f, "missing required block '{b}'"),
            StorageError::InvalidUtf8 => write!(f, "invalid UTF-8 in stored string"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::IoAt { op, path, source } => {
                write!(f, "I/O error while {op} {}: {source}", path.display())
            }
            StorageError::Degraded { reason } => {
                write!(f, "engine degraded to read-only: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::IoAt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(StorageError, &str)> = vec![
            (StorageError::UnexpectedEof { context: "plist" }, "plist"),
            (StorageError::VarintOverflow, "varint"),
            (StorageError::BadMagic, "magic"),
            (StorageError::UnsupportedVersion(9), "9"),
            (StorageError::MissingBlock("tables".into()), "tables"),
            (StorageError::InvalidUtf8, "UTF-8"),
            (
                StorageError::ChecksumMismatch { block: "b".into() },
                "checksum",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_ctx_names_operation_and_path() {
        let r: std::io::Result<()> = Err(std::io::Error::other("disk on fire"));
        let e = r
            .io_ctx("fsyncing", Path::new("wal-00000012.log"))
            .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("while fsyncing"), "{msg}");
        assert!(msg.contains("wal-00000012.log"), "{msg}");
        assert!(msg.contains("disk on fire"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn degraded_is_typed_and_displayed() {
        let e = StorageError::Degraded {
            reason: "segment rebuild failed".into(),
        };
        assert!(matches!(e, StorageError::Degraded { .. }));
        assert!(e.to_string().contains("read-only"));
        assert!(e.to_string().contains("segment rebuild failed"));
    }
}
