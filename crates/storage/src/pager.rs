//! Demand-paged segment reads under a global byte budget.
//!
//! Cold segments used to be served from one resident `Bytes` per file, so
//! resident memory grew linearly with the cold stack. [`PageCache`] bounds
//! that: immutable segment files are read in fixed-size pages (default
//! [`DEFAULT_PAGE_SIZE`]) keyed by `(segment_id, page_no)`, filled on demand
//! via [`Vfs::pread`], and evicted by a CLOCK ring so the total resident
//! payload never exceeds the configured budget.
//!
//! Design notes:
//!
//! * **One lock.** All cache state sits behind a single [`RankedMutex`] at
//!   [`PAGER_CACHE_RANK`] (rank 55.0 in the `mate_index::engine` table —
//!   the highest rank, because the cache lock is always acquired *last*:
//!   probes fault pages in while holding the 40-family probe locks, and
//!   dropping a superseded snapshot evicts pages while the 50.0 snapshot
//!   slot is held). Fills run *outside* the lock: lookup, unlock, `pread`,
//!   relock, re-check for a racing fill, insert.
//! * **Strict budget.** Eviction happens *before* insertion, so
//!   `resident_bytes <= budget_bytes` holds at every instant, not just
//!   eventually. A page larger than the whole budget (tiny test budgets) is
//!   served read-through without being cached at all.
//! * **Immutability.** Segment files never change after the manifest commit
//!   that publishes them, so pages carry no version and a hit can never be
//!   stale. Files are unlinked only after [`PageCache::remove_segment`]
//!   drops their registration (the engine pins files until the last
//!   snapshot referencing them is gone).
//! * **Faults.** Fills go through the same [`Vfs`] seam as whole-file
//!   reads, so `FaultVfs` read faults and bit flips fire on pread fills
//!   exactly as they do on `Vfs::read`. A failed fill caches nothing and
//!   surfaces as a typed [`StorageError`]; the next call retries the read.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use mate_obs::{Obs, Rank, RankedMutex};

use crate::error::{IoCtx, StorageError};
use crate::vfs::Vfs;

/// Lock rank of the page-cache mutex: strictly above every engine lock
/// (probes fault pages in under the 40-family probe locks; snapshot-slot
/// holders at 50.0 evict pages when dropping superseded layers), and
/// nothing is ever acquired while it is held. Re-exported into the
/// `mate_index::engine::ranks` table.
pub const PAGER_CACHE_RANK: Rank = Rank::new(55, 0, "pager-cache");

/// Default page size: 64 KiB. Large enough that a block-compressed posting
/// run or one front-coded restart group rarely straddles more than two
/// pages, small enough that tiny budgets still hold a useful working set.
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Page lookups served from the cache.
    pub hits: u64,
    /// Page lookups that required a `pread` fill.
    pub misses: u64,
    /// Pages evicted by the CLOCK ring to make room.
    pub evictions: u64,
    /// Bytes of page payload currently resident (always `<= budget`).
    pub resident_bytes: u64,
}

/// One resident page.
#[derive(Debug)]
struct Slot {
    key: (u64, u64),
    data: Bytes,
    referenced: bool,
}

/// All mutable cache state, guarded by the single pager mutex.
#[derive(Debug, Default)]
struct PagerInner {
    /// Registered segments: id -> file path used for fills.
    segments: HashMap<u64, Arc<PathBuf>>,
    /// Page table: (segment, page_no) -> slot index.
    map: HashMap<(u64, u64), usize>,
    /// CLOCK ring of slots; `None` entries are free.
    slots: Vec<Option<Slot>>,
    /// Free slot indices, reused before the ring grows.
    free: Vec<usize>,
    /// CLOCK hand: next slot the eviction sweep inspects.
    hand: usize,
    /// Sum of `data.len()` over occupied slots.
    resident_bytes: usize,
}

/// Registry handles mirrored on every cache operation once attached.
#[derive(Debug)]
struct PagerObs {
    obs: Arc<Obs>,
}

/// A shared, budgeted page cache over immutable segment files (see the
/// module docs for the design).
#[derive(Debug)]
pub struct PageCache {
    vfs: Arc<dyn Vfs>,
    page_size: usize,
    budget_bytes: usize,
    inner: RankedMutex<PagerInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs: OnceLock<PagerObs>,
}

impl PageCache {
    /// A cache filling `page_size`-byte pages from `vfs`, keeping at most
    /// `budget_bytes` of payload resident. A zero `page_size` is clamped
    /// to one byte.
    pub fn new(vfs: Arc<dyn Vfs>, page_size: usize, budget_bytes: usize) -> PageCache {
        PageCache {
            vfs,
            page_size: page_size.max(1),
            budget_bytes,
            inner: RankedMutex::new(PAGER_CACHE_RANK, PagerInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Connects the cache to an observability hub: `pager.{hits, misses,
    /// evictions, resident_bytes}` are mirrored on every operation and
    /// `pager.fills_us` records each fill's `pread` latency. Only the
    /// first attachment takes effect.
    pub fn attach_obs(&self, obs: &Arc<Obs>) {
        let _ = self.obs.set(PagerObs {
            obs: Arc::clone(obs),
        });
        self.mirror_obs();
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The resident-payload budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Registers `id` as readable from `path`. Fills for unregistered ids
    /// fail with a typed error, so registration doubles as a use-after-
    /// remove guard. Re-registering an id replaces the path and drops any
    /// pages cached under the old one.
    pub fn register_segment(&self, id: u64, path: &Path) {
        let mut inner = self.inner.lock();
        if inner.segments.contains_key(&id) {
            Self::evict_segment_locked(&mut inner, id, &self.evictions);
        }
        inner.segments.insert(id, Arc::new(path.to_path_buf()));
        drop(inner);
        self.mirror_obs();
    }

    /// Drops `id`'s registration and evicts all of its resident pages.
    /// Call before unlinking the underlying file.
    pub fn remove_segment(&self, id: u64) {
        let mut inner = self.inner.lock();
        inner.segments.remove(&id);
        Self::evict_segment_locked(&mut inner, id, &self.evictions);
        drop(inner);
        self.mirror_obs();
    }

    /// Reads `len` bytes at `offset` of segment `id` into `out` (cleared
    /// first), faulting in exactly the pages the range overlaps.
    ///
    /// Errors are typed: an unregistered `id`, a fill failure from the
    /// [`Vfs`], or a range past end-of-file ([`StorageError::UnexpectedEof`]).
    /// A failed fill caches nothing, so a later retry re-reads the file.
    pub fn read_into(
        &self,
        id: u64,
        offset: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), StorageError> {
        out.clear();
        if len == 0 {
            return Ok(());
        }
        out.reserve(len);
        let ps = self.page_size as u64;
        let end = offset
            .checked_add(len as u64)
            .ok_or(StorageError::InvalidLength {
                context: "pager read range",
                value: u64::MAX,
            })?;
        let first = offset / ps;
        let last = (end - 1) / ps;
        for page_no in first..=last {
            let page = self.page(id, page_no)?;
            let page_start = page_no * ps;
            let lo = offset.saturating_sub(page_start) as usize;
            let hi = (end - page_start).min(ps) as usize;
            if page.len() < hi {
                return Err(StorageError::UnexpectedEof {
                    context: "paged segment read past end of file",
                });
            }
            out.extend_from_slice(&page[lo..hi]);
        }
        Ok(())
    }

    /// Current counters (resident bytes under the lock, the rest relaxed).
    pub fn stats(&self) -> PagerStats {
        let resident = self.inner.lock().resident_bytes as u64;
        PagerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: resident,
        }
    }

    /// Returns page `page_no` of segment `id`, filling it on a miss.
    fn page(&self, id: u64, page_no: u64) -> Result<Bytes, StorageError> {
        let key = (id, page_no);
        let path = {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.map.get(&key) {
                if let Some(slot) = inner.slots[idx].as_mut() {
                    slot.referenced = true;
                    let data = slot.data.clone();
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.mirror_obs();
                    return Ok(data);
                }
            }
            match inner.segments.get(&id) {
                Some(p) => Arc::clone(p),
                None => {
                    return Err(StorageError::InvalidLength {
                        context: "pager fill for unregistered segment id",
                        value: id,
                    })
                }
            }
        };
        // Fill outside the lock: concurrent probes of other pages proceed.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let start = self
            .obs
            .get()
            .map(|o| (Arc::clone(&o.obs), o.obs.clock().now_nanos()));
        let buf = self
            .vfs
            .pread(&path, page_no * self.page_size as u64, self.page_size)
            .io_ctx("pread-filling page from", &path)?;
        if let Some((obs, t0)) = start {
            obs.histogram("pager.fills_us")
                .record((obs.clock().now_nanos() - t0) / 1_000);
        }
        let data = Bytes::from(buf);
        let mut inner = self.inner.lock();
        // A racing fill may have inserted the page while we read; keep the
        // cached copy so both callers observe the same bytes.
        if let Some(&idx) = inner.map.get(&key) {
            if let Some(slot) = inner.slots[idx].as_mut() {
                slot.referenced = true;
                let cached = slot.data.clone();
                drop(inner);
                self.mirror_obs();
                return Ok(cached);
            }
        }
        if inner.segments.contains_key(&id) && data.len() <= self.budget_bytes {
            // Evict *before* inserting so resident_bytes never exceeds the
            // budget, not even transiently.
            self.make_room_locked(&mut inner, data.len());
            let slot = Slot {
                key,
                data: data.clone(),
                referenced: true,
            };
            inner.resident_bytes += data.len();
            let idx = match inner.free.pop() {
                Some(i) => {
                    inner.slots[i] = Some(slot);
                    i
                }
                None => {
                    inner.slots.push(Some(slot));
                    inner.slots.len() - 1
                }
            };
            inner.map.insert(key, idx);
        }
        // else: read-through — a page over budget (or a segment removed
        // mid-fill) is served without being cached.
        drop(inner);
        self.mirror_obs();
        Ok(data)
    }

    /// CLOCK sweep: clears referenced bits and evicts unreferenced pages
    /// until `incoming` more bytes fit under the budget.
    fn make_room_locked(&self, inner: &mut PagerInner, incoming: usize) {
        while inner.resident_bytes + incoming > self.budget_bytes && !inner.map.is_empty() {
            let n = inner.slots.len();
            let idx = inner.hand % n;
            inner.hand = (idx + 1) % n;
            let Some(slot) = inner.slots[idx].as_mut() else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let key = slot.key;
            let freed = slot.data.len();
            inner.slots[idx] = None;
            inner.map.remove(&key);
            inner.free.push(idx);
            inner.resident_bytes -= freed;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evicts every resident page of segment `id` (lock already held).
    fn evict_segment_locked(inner: &mut PagerInner, id: u64, evictions: &AtomicU64) {
        let victims: Vec<(u64, u64)> = inner.map.keys().filter(|k| k.0 == id).copied().collect();
        for key in victims {
            if let Some(idx) = inner.map.remove(&key) {
                if let Some(slot) = inner.slots[idx].take() {
                    inner.resident_bytes -= slot.data.len();
                    inner.free.push(idx);
                    evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Mirrors the atomic counters into the attached registry, if any.
    fn mirror_obs(&self) {
        let Some(po) = self.obs.get() else {
            return;
        };
        po.obs
            .counter("pager.hits")
            .set(self.hits.load(Ordering::Relaxed));
        po.obs
            .counter("pager.misses")
            .set(self.misses.load(Ordering::Relaxed));
        po.obs
            .counter("pager.evictions")
            .set(self.evictions.load(Ordering::Relaxed));
        po.obs
            .gauge("pager.resident_bytes")
            .set(self.inner.lock().resident_bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultVfs, StdVfs};

    fn tmpfile(tag: &str, data: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mate-pager-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("seg.bin");
        std::fs::write(&p, data).unwrap();
        p
    }

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn reads_match_file_contents_across_page_boundaries() {
        let data = pattern(1000);
        let p = tmpfile("bounds", &data);
        let cache = PageCache::new(Arc::new(StdVfs), 64, 1 << 20);
        cache.register_segment(7, &p);
        let mut out = Vec::new();
        for (off, len) in [(0, 1000), (0, 64), (63, 2), (64, 64), (999, 1), (500, 0)] {
            cache.read_into(7, off as u64, len, &mut out).unwrap();
            assert_eq!(out, &data[off..off + len], "off={off} len={len}");
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let p = tmpfile("counts", &pattern(256));
        let cache = PageCache::new(Arc::new(StdVfs), 64, 1 << 20);
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        cache.read_into(1, 0, 128, &mut out).unwrap(); // pages 0,1: 2 misses
        cache.read_into(1, 0, 128, &mut out).unwrap(); // 2 hits
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert_eq!(s.resident_bytes, 128);
    }

    #[test]
    fn resident_bytes_never_exceeds_budget() {
        let data = pattern(4096);
        let p = tmpfile("budget", &data);
        let cache = PageCache::new(Arc::new(StdVfs), 64, 256); // 4 pages max
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        for off in (0..4096).step_by(64) {
            cache.read_into(1, off as u64, 64, &mut out).unwrap();
            assert_eq!(out, &data[off..off + 64]);
            assert!(cache.stats().resident_bytes <= 256);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 64);
        assert!(s.evictions >= 60, "evictions: {}", s.evictions);
    }

    #[test]
    fn page_larger_than_budget_is_read_through() {
        let data = pattern(512);
        let p = tmpfile("huge-page", &data);
        let cache = PageCache::new(Arc::new(StdVfs), 128, 64); // page > budget
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        cache.read_into(1, 0, 512, &mut out).unwrap();
        assert_eq!(out, data);
        let s = cache.stats();
        assert_eq!(s.resident_bytes, 0, "nothing cached");
        cache.read_into(1, 0, 512, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(cache.stats().hits, 0, "every read is a fill");
    }

    #[test]
    fn eof_and_unregistered_are_typed_errors() {
        let p = tmpfile("eof", &pattern(100));
        let cache = PageCache::new(Arc::new(StdVfs), 64, 1 << 20);
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        let e = cache.read_into(1, 90, 20, &mut out).unwrap_err();
        assert!(matches!(e, StorageError::UnexpectedEof { .. }), "{e}");
        let e = cache.read_into(2, 0, 10, &mut out).unwrap_err();
        assert!(
            matches!(e, StorageError::InvalidLength { value: 2, .. }),
            "{e}"
        );
    }

    #[test]
    fn remove_segment_drops_pages_and_registration() {
        let p = tmpfile("remove", &pattern(256));
        let cache = PageCache::new(Arc::new(StdVfs), 64, 1 << 20);
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        cache.read_into(1, 0, 256, &mut out).unwrap();
        assert_eq!(cache.stats().resident_bytes, 256);
        cache.remove_segment(1);
        let s = cache.stats();
        assert_eq!(s.resident_bytes, 0);
        assert!(cache.read_into(1, 0, 10, &mut out).is_err());
    }

    #[test]
    fn failed_fill_is_typed_and_retry_converges() {
        let data = pattern(256);
        let p = tmpfile("fault", &data);
        let vfs = Arc::new(FaultVfs::new());
        let cache = PageCache::new(Arc::new(Arc::clone(&vfs)), 64, 1 << 20);
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        vfs.fail_nth(1);
        let e = cache.read_into(1, 0, 256, &mut out).unwrap_err();
        assert!(matches!(e, StorageError::IoAt { .. }), "{e}");
        // Nothing was cached for the failed page; the retry refills and
        // serves the true bytes.
        cache.read_into(1, 0, 256, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(vfs.injected(), 1);
    }

    #[test]
    fn attached_obs_mirrors_counters_and_fill_latency() {
        let p = tmpfile("obs", &pattern(256));
        let cache = PageCache::new(Arc::new(StdVfs), 64, 1 << 20);
        let obs = Arc::new(Obs::new());
        cache.attach_obs(&obs);
        cache.register_segment(1, &p);
        let mut out = Vec::new();
        cache.read_into(1, 0, 256, &mut out).unwrap();
        cache.read_into(1, 0, 64, &mut out).unwrap();
        assert_eq!(obs.counter("pager.hits").get(), 1);
        assert_eq!(obs.counter("pager.misses").get(), 4);
        assert_eq!(obs.gauge("pager.resident_bytes").get(), 256);
        assert_eq!(obs.histogram("pager.fills_us").count(), 4);
    }

    #[test]
    fn reregistering_an_id_drops_stale_pages() {
        let a = tmpfile("rereg-a", &[1u8; 128]);
        let b = tmpfile("rereg-b", &[2u8; 128]);
        let cache = PageCache::new(Arc::new(StdVfs), 64, 1 << 20);
        cache.register_segment(1, &a);
        let mut out = Vec::new();
        cache.read_into(1, 0, 128, &mut out).unwrap();
        assert_eq!(out, [1u8; 128]);
        cache.register_segment(1, &b);
        cache.read_into(1, 0, 128, &mut out).unwrap();
        assert_eq!(out, [2u8; 128], "no stale pages under the old path");
    }
}
