//! Fuzz-style property tests: segment parsing must never panic and must
//! never silently accept corrupted payloads.

use bytes::Bytes;
use mate_storage::{SegmentReader, SegmentWriter};
use proptest::prelude::*;

fn sample_segment(payloads: &[Vec<u8>]) -> Bytes {
    let mut w = SegmentWriter::new();
    for (i, p) in payloads.iter().enumerate() {
        w.add_block(format!("block{i}"), Bytes::from(p.clone()));
    }
    w.finish()
}

proptest! {
    /// Arbitrary bytes never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(data: Vec<u8>) {
        let _ = SegmentReader::open(Bytes::from(data));
    }

    /// Round trip of arbitrary block payloads.
    #[test]
    fn roundtrip(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..5)) {
        let seg = SegmentReader::open(sample_segment(&payloads)).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            let block = seg.block(&format!("block{i}")).unwrap();
            prop_assert_eq!(block.as_ref(), p.as_slice());
        }
    }

    /// A single corrupted byte is always detected: either parsing fails, a
    /// block CRC fails, or the corruption only touched block *names* /
    /// framing in a way that renames blocks (in which case lookups miss).
    #[test]
    fn bit_flips_never_silently_alter_payloads(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..4),
        pos_seed: usize,
        bit in 0u8..8,
    ) {
        let original = sample_segment(&payloads);
        let mut raw = original.to_vec();
        let pos = pos_seed % raw.len();
        raw[pos] ^= 1 << bit;
        prop_assume!(raw != original.as_ref()); // actually changed

        match SegmentReader::open(Bytes::from(raw)) {
            Err(_) => {} // framing corruption detected
            Ok(seg) => {
                for (i, p) in payloads.iter().enumerate() {
                    // CRC / missing-block errors mean the corruption was
                    // detected; readable blocks must be byte-identical.
                    if let Ok(block) = seg.block(&format!("block{i}")) {
                        prop_assert_eq!(
                            block.as_ref(),
                            p.as_slice(),
                            "block {} silently corrupted",
                            i
                        );
                    }
                }
            }
        }
    }

    /// Truncation at any point is detected (no partial success with wrong
    /// payloads).
    #[test]
    fn truncation_detected(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..3),
        cut_seed: usize,
    ) {
        let original = sample_segment(&payloads);
        let cut = 1 + cut_seed % (original.len() - 1);
        prop_assume!(cut < original.len());
        match SegmentReader::open(original.slice(..cut)) {
            Err(_) => {}
            Ok(seg) => {
                // Parsing may succeed if the cut fell inside trailing blocks'
                // region that the varint framing happens to tolerate — but
                // any readable block must still be byte-identical.
                for (i, p) in payloads.iter().enumerate() {
                    if let Ok(block) = seg.block(&format!("block{i}")) {
                        prop_assert_eq!(block.as_ref(), p.as_slice());
                    }
                }
            }
        }
    }
}
