//! MCR — Multi-Column Retrieval (§7.1.1).
//!
//! MCR fetches posting lists for **every** key column (not just the initial
//! one), intersects the per-column `(table, row)` hit sets, and verifies the
//! surviving rows. It avoids many of SCR's false positives at the price of
//! fetching |Q| times more posting lists — the trade-off visible in Figure 4,
//! where MCR wins on small corpora and loses once posting lists get long.

use crate::system::DiscoverySystem;
use mate_core::joinability::{verify_table_joinability, RowPair};
use mate_core::{DiscoveryResult, DiscoveryStats, TopK};
use mate_hash::fx::{FxHashMap, FxHashSet};
use mate_index::InvertedIndex;
use mate_table::{ColId, Corpus, RowId, Table, TableId};
use std::time::Instant;

/// The MCR baseline system.
pub struct McrDiscovery<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    max_mappings_per_row: usize,
}

impl<'a> McrDiscovery<'a> {
    /// Creates an MCR system.
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex) -> Self {
        McrDiscovery {
            corpus,
            index,
            max_mappings_per_row: 10_000,
        }
    }
}

impl DiscoverySystem for McrDiscovery<'_> {
    fn system_name(&self) -> String {
        "MCR".to_string()
    }

    fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        let start = Instant::now();
        let mut stats = DiscoveryStats::default();

        // ---- Fetch per key column and intersect -------------------------
        // For the first key column we also remember *which* values hit each
        // row, so candidate rows can be paired with query rows afterwards.
        let q0 = q_cols[0];
        let mut first_hits: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        let mut intersection: FxHashSet<(u32, u32)> = FxHashSet::default();

        for (qi, &q) in q_cols.iter().enumerate() {
            let mut col_set: FxHashSet<(u32, u32)> = FxHashSet::default();
            let mut seen_vals: FxHashSet<&str> = FxHashSet::default();
            let mut vid = 0u32;
            for v in &query.column(q).values {
                if v.is_empty() || !seen_vals.insert(v) {
                    continue;
                }
                if let Some(pl) = self.index.posting_list(v) {
                    stats.pl_lists_fetched += 1;
                    stats.pl_items_fetched += pl.len();
                    for e in pl {
                        let loc = (e.table.0, e.row.0);
                        col_set.insert(loc);
                        if qi == 0 {
                            first_hits.entry(loc).or_default().push(vid);
                        }
                    }
                }
                vid += 1;
            }
            if qi == 0 {
                intersection = col_set;
            } else {
                intersection.retain(|loc| col_set.contains(loc));
            }
            if intersection.is_empty() {
                break;
            }
        }

        // ---- Group candidate rows per table ------------------------------
        let mut by_table: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (t, r) in &intersection {
            by_table.entry(*t).or_default().push(*r);
        }
        let mut candidates: Vec<(u32, Vec<u32>)> = by_table.into_iter().collect();
        candidates.sort_unstable_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        stats.candidate_tables = candidates.len();

        // Query rows per distinct first-column value id, plus tuple ids.
        let (rows_by_vid, _tuples) = query_rows_by_first_value(query, q_cols, q0);

        let mut topk = TopK::new(k);
        for (t, mut rows) in candidates {
            // Same coarse bound as Algorithm 1 rule 1: candidate rows upper-
            // bound the joinability; sorted order makes the stop sound.
            if topk.is_full() && rows.len() as u64 <= topk.min_joinability() {
                stats.stopped_early_rule1 = true;
                break;
            }
            stats.tables_evaluated += 1;
            rows.sort_unstable();

            let mut pairs: Vec<RowPair> = Vec::new();
            let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
            for &r in &rows {
                if let Some(vids) = first_hits.get(&(t, r)) {
                    for vid in vids {
                        for &(qrow, tuple_id) in &rows_by_vid[*vid as usize] {
                            if seen.insert((r, qrow)) {
                                pairs.push(RowPair {
                                    candidate_row: RowId(r),
                                    query_row: RowId(qrow),
                                    tuple_id,
                                });
                            }
                        }
                    }
                }
            }
            stats.rows_passed_filter += pairs.len();

            let outcome = verify_table_joinability(
                self.corpus.table(TableId(t)),
                query,
                q_cols,
                &pairs,
                self.max_mappings_per_row,
            );
            stats.rows_verified_joinable += outcome.true_positive_pairs;
            stats.false_positive_rows += outcome.pairs_checked - outcome.true_positive_pairs;
            stats.mappings_capped |= outcome.mappings_capped;
            topk.update(TableId(t), outcome.joinability);
        }

        stats.elapsed = start.elapsed();
        DiscoveryResult {
            top_k: topk.into_sorted(),
            stats,
        }
    }
}

/// Builds, per distinct non-empty value of the first key column, the list of
/// `(query row, tuple id)` pairs with a complete key. Returns the per-value
/// lists (indexed by value id in first-seen order) and the tuple count.
fn query_rows_by_first_value(
    query: &Table,
    q_cols: &[ColId],
    q0: ColId,
) -> (Vec<Vec<(u32, u32)>>, u32) {
    let mut vids: FxHashMap<&str, u32> = FxHashMap::default();
    // Assign ids to distinct values in the same order the fetch loop does.
    for v in &query.column(q0).values {
        if v.is_empty() {
            continue;
        }
        let next = vids.len() as u32;
        vids.entry(v.as_str()).or_insert(next);
    }
    let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); vids.len()];
    let mut tuple_ids: FxHashMap<Vec<&str>, u32> = FxHashMap::default();
    'rows: for r in 0..query.num_rows() {
        let mut tuple = Vec::with_capacity(q_cols.len());
        for &q in q_cols {
            let v = query.cell(RowId::from(r), q);
            if v.is_empty() {
                continue 'rows;
            }
            tuple.push(v);
        }
        let next = tuple_ids.len() as u32;
        let tid = *tuple_ids.entry(tuple).or_insert(next);
        let vid = vids[query.cell(RowId::from(r), q0)];
        rows[vid as usize].push((r as u32, tid));
    }
    (rows, tuple_ids.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_core::MateDiscovery;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    fn setup() -> (Corpus, InvertedIndex, Xash, Table) {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("joinable", ["f", "l", "c"])
                .row(["muhammad", "lee", "us"])
                .row(["ansel", "adams", "uk"])
                .row(["helmut", "newton", "germany"])
                .build(),
        );
        corpus.add_table(
            TableBuilder::new("partial", ["f", "l", "c"])
                .row(["muhammad", "ali", "us"]) // f+c hit, l misses
                .row(["ansel", "adams", "jp"]) // f+l hit, c misses
                .build(),
        );
        corpus.add_table(TableBuilder::new("single", ["x"]).row(["muhammad"]).build());
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let query = TableBuilder::new("q", ["a", "b", "c"])
            .row(["muhammad", "lee", "us"])
            .row(["ansel", "adams", "uk"])
            .row(["helmut", "newton", "germany"])
            .build();
        (corpus, index, hasher, query)
    }

    #[test]
    fn agrees_with_mate() {
        let (corpus, index, hasher, query) = setup();
        let cols = [ColId(0), ColId(1), ColId(2)];
        let mate = MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &cols, 3);
        let mcr = McrDiscovery::new(&corpus, &index).discover(&query, &cols, 3);
        assert_eq!(mate.top_k, mcr.top_k);
        assert_eq!(mcr.top_k[0].joinability, 3);
    }

    #[test]
    fn intersection_prunes_single_column_rows() {
        let (corpus, index, _, query) = setup();
        let cols = [ColId(0), ColId(1), ColId(2)];
        let r = McrDiscovery::new(&corpus, &index).discover(&query, &cols, 3);
        // The "single" table only matches one column → never a candidate.
        assert!(r.top_k.iter().all(|t| t.table != TableId(2)));
        // "partial" rows contain hits for some columns but the row-level
        // intersection removes rows missing any column... row 0 of partial:
        // f ("muhammad") and c ("us") hit but l ("ali") never occurs in the
        // query's l/f/c values → row dropped by intersection.
        // Row 1: "ansel","adams" hit but "jp" doesn't → dropped.
        assert!(r.top_k.iter().all(|t| t.table != TableId(1)));
    }

    #[test]
    fn fetches_all_columns() {
        let (corpus, index, hasher, query) = setup();
        let cols = [ColId(0), ColId(1), ColId(2)];
        let mcr = McrDiscovery::new(&corpus, &index).discover(&query, &cols, 1);
        let mate = MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &cols, 1);
        // MCR reads posting lists for every key column; MATE only for one.
        assert!(mcr.stats.pl_items_fetched > mate.stats.pl_items_fetched);
    }

    #[test]
    fn single_column_key_degenerates_gracefully() {
        let (corpus, index, _, query) = setup();
        let r = McrDiscovery::new(&corpus, &index).discover(&query, &[ColId(0)], 2);
        assert!(!r.top_k.is_empty());
        assert_eq!(r.top_k[0].table, TableId(0));
    }

    #[test]
    fn no_hits() {
        let (corpus, index, _, _) = setup();
        let query = TableBuilder::new("q", ["a", "b"]).row(["zz", "ww"]).build();
        let r = McrDiscovery::new(&corpus, &index).discover(&query, &[ColId(0), ColId(1)], 2);
        assert!(r.top_k.is_empty());
    }
}
