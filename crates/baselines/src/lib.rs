//! Baseline join-discovery systems (§7.1.1 of the paper).
//!
//! The paper compares MATE against adaptations of single-column discovery
//! systems, since no prior system handles n-ary keys natively:
//!
//! * [`ScrDiscovery`] — **SCR**: the single-column-retrieval adaptation. It
//!   runs Algorithm 1 with all optimizations *except* the super key: every
//!   fetched candidate row goes straight to exact value verification.
//! * [`McrDiscovery`] — **MCR**: fetches posting lists for *every* key
//!   column, intersects the per-column row sets, and verifies the surviving
//!   rows.
//! * [`JosieEngine`] — a from-scratch top-k overlap set-similarity engine in
//!   the spirit of JOSIE (Zhu et al., SIGMOD 2019): token posting lists
//!   processed in ascending-frequency order with candidate freezing once
//!   unseen candidates can no longer reach the top-k.
//! * [`ScrJosieDiscovery`] / [`McrJosieDiscovery`] — the paper's two JOSIE
//!   adaptations: JOSIE proposes candidate tables through one (SCR) or all
//!   (MCR) key columns; exact verification then computes n-ary joinability.
//! * [`oracle`] — an exhaustive scan computing the exact joinability of
//!   *every* corpus table; ground truth for tests and the "Ideal system"
//!   bar of Figure 5.
//!
//! All systems implement [`DiscoverySystem`] so the benchmark harness can
//! drive them uniformly.

#![warn(missing_docs)]

pub mod josie;
pub mod josie_adapt;
pub mod mcr;
pub mod oracle;
pub mod scr;
pub mod system;

pub use josie::JosieEngine;
pub use josie_adapt::{McrJosieDiscovery, ScrJosieDiscovery};
pub use mcr::McrDiscovery;
pub use oracle::oracle_topk;
pub use scr::ScrDiscovery;
pub use system::DiscoverySystem;
