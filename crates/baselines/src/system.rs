//! The [`DiscoverySystem`] trait: a uniform driver interface for MATE and
//! every baseline, used by the benchmark harness and the integration tests.

use mate_core::{DiscoveryResult, MateDiscovery};
use mate_table::{ColId, Table};

/// A system that answers top-k n-ary joinable-table queries.
pub trait DiscoverySystem {
    /// Short display name ("Mate", "SCR", "MCR Josie", ...).
    fn system_name(&self) -> String;

    /// Runs a top-`k` discovery for `query` on composite key `q_cols`.
    fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult;
}

impl DiscoverySystem for MateDiscovery<'_> {
    fn system_name(&self) -> String {
        "Mate".to_string()
    }

    fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        MateDiscovery::discover(self, query, q_cols, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::{Corpus, TableBuilder};

    #[test]
    fn mate_implements_trait() {
        let mut corpus = Corpus::new();
        corpus.add_table(TableBuilder::new("t", ["a", "b"]).row(["x", "y"]).build());
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let sys: &dyn DiscoverySystem = &mate;
        assert_eq!(sys.system_name(), "Mate");
        let q = TableBuilder::new("q", ["p", "q"]).row(["x", "y"]).build();
        let r = sys.discover(&q, &[0u32.into(), 1u32.into()], 1);
        assert_eq!(r.top_k.len(), 1);
        assert_eq!(r.top_k[0].joinability, 1);
    }
}
