//! JOSIE adaptations for n-ary discovery (§7.1.1).
//!
//! JOSIE is a *unary* top-k engine; the paper evaluates two ways of pressing
//! it into n-ary service:
//!
//! * **SCR JOSIE** ([`ScrJosieDiscovery`]): run JOSIE on the initial key
//!   column to propose candidate tables, then verify the full composite key
//!   against those tables through the SCR index ("To infer the joinable rows
//!   we fall back on the SCR index").
//! * **MCR JOSIE** ([`McrJosieDiscovery`]): run JOSIE once per key column,
//!   intersect the proposed table sets, and verify the survivors.
//!
//! Both adaptations over-fetch candidates by `candidate_factor × k` columns
//! per JOSIE call, because high unary overlap does not imply high n-ary
//! joinability ("it is not guaranteed that the joinability of each join
//! column is equally high in each candidate table") — exactly the weakness
//! the paper's Figure 4 exposes.

use crate::josie::JosieEngine;
use crate::system::DiscoverySystem;
use mate_core::joinability::{verify_table_joinability, RowPair};
use mate_core::{DiscoveryResult, DiscoveryStats, InitColumnHeuristic, TopK};
use mate_hash::fx::{FxHashMap, FxHashSet};
use mate_index::InvertedIndex;
use mate_table::{ColId, Corpus, RowId, Table, TableId};
use std::time::Instant;

/// Default over-fetch multiplier for JOSIE candidate columns.
pub const DEFAULT_CANDIDATE_FACTOR: usize = 10;

/// SCR JOSIE: JOSIE proposes tables via the initial column; SCR verifies.
pub struct ScrJosieDiscovery<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    josie: &'a JosieEngine,
    candidate_factor: usize,
}

impl<'a> ScrJosieDiscovery<'a> {
    /// Creates the adaptation with the default candidate factor.
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, josie: &'a JosieEngine) -> Self {
        ScrJosieDiscovery {
            corpus,
            index,
            josie,
            candidate_factor: DEFAULT_CANDIDATE_FACTOR,
        }
    }

    /// Overrides the candidate over-fetch factor.
    pub fn with_candidate_factor(mut self, factor: usize) -> Self {
        self.candidate_factor = factor.max(1);
        self
    }
}

impl DiscoverySystem for ScrJosieDiscovery<'_> {
    fn system_name(&self) -> String {
        "SCR Josie".to_string()
    }

    fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        let start = Instant::now();
        let mut stats = DiscoveryStats::default();

        let initial = mate_core::init_column::select_initial_column(
            query,
            q_cols,
            InitColumnHeuristic::MinCardinality,
            self.index.store(),
        );
        stats.initial_column = Some(initial);

        let tokens = distinct_values(query, initial);
        let (cols, _) = self.josie.top_k_columns(&tokens, self.candidate_factor * k);
        let tables: FxHashSet<u32> = cols.iter().map(|((t, _), _)| *t).collect();

        verify_tables(
            self.corpus,
            self.index,
            query,
            q_cols,
            initial,
            &tables,
            k,
            &mut stats,
        )
        .finish(start, stats)
    }
}

/// MCR JOSIE: one JOSIE call per key column; table sets intersected.
pub struct McrJosieDiscovery<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    josie: &'a JosieEngine,
    candidate_factor: usize,
}

impl<'a> McrJosieDiscovery<'a> {
    /// Creates the adaptation with the default candidate factor.
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, josie: &'a JosieEngine) -> Self {
        McrJosieDiscovery {
            corpus,
            index,
            josie,
            candidate_factor: DEFAULT_CANDIDATE_FACTOR,
        }
    }

    /// Overrides the candidate over-fetch factor.
    pub fn with_candidate_factor(mut self, factor: usize) -> Self {
        self.candidate_factor = factor.max(1);
        self
    }
}

impl DiscoverySystem for McrJosieDiscovery<'_> {
    fn system_name(&self) -> String {
        "MCR Josie".to_string()
    }

    fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        let start = Instant::now();
        let mut stats = DiscoveryStats::default();

        let mut tables: Option<FxHashSet<u32>> = None;
        for &q in q_cols {
            let tokens = distinct_values(query, q);
            let (cols, _) = self.josie.top_k_columns(&tokens, self.candidate_factor * k);
            let set: FxHashSet<u32> = cols.iter().map(|((t, _), _)| *t).collect();
            tables = Some(match tables {
                None => set,
                Some(prev) => prev.intersection(&set).copied().collect(),
            });
        }
        let tables = tables.unwrap_or_default();
        let initial = q_cols[0];
        stats.initial_column = Some(initial);

        verify_tables(
            self.corpus,
            self.index,
            query,
            q_cols,
            initial,
            &tables,
            k,
            &mut stats,
        )
        .finish(start, stats)
    }
}

// ------------------------------------------------------------------ shared --

fn distinct_values(query: &Table, col: ColId) -> Vec<&str> {
    let mut seen = FxHashSet::default();
    query
        .column(col)
        .values
        .iter()
        .filter(|v| !v.is_empty())
        .map(String::as_str)
        .filter(|v| seen.insert(*v))
        .collect()
}

struct Verified {
    topk: TopK,
}

impl Verified {
    fn finish(self, start: Instant, mut stats: DiscoveryStats) -> DiscoveryResult {
        stats.elapsed = start.elapsed();
        DiscoveryResult {
            top_k: self.topk.into_sorted(),
            stats,
        }
    }
}

/// SCR-style exact verification of the composite key against a table set:
/// pair candidate rows (reached through the initial column's posting lists)
/// with query rows, verify values, rank by joinability.
#[allow(clippy::too_many_arguments)]
fn verify_tables(
    corpus: &Corpus,
    index: &InvertedIndex,
    query: &Table,
    q_cols: &[ColId],
    initial: ColId,
    tables: &FxHashSet<u32>,
    k: usize,
    stats: &mut DiscoveryStats,
) -> Verified {
    // Query rows per initial value (complete keys only).
    let mut by_value: FxHashMap<&str, Vec<(u32, u32)>> = FxHashMap::default();
    let mut tuple_ids: FxHashMap<Vec<&str>, u32> = FxHashMap::default();
    'rows: for r in 0..query.num_rows() {
        let mut tuple = Vec::with_capacity(q_cols.len());
        for &q in q_cols {
            let v = query.cell(RowId::from(r), q);
            if v.is_empty() {
                continue 'rows;
            }
            tuple.push(v);
        }
        let next = tuple_ids.len() as u32;
        let tid = *tuple_ids.entry(tuple).or_insert(next);
        by_value
            .entry(query.cell(RowId::from(r), initial))
            .or_default()
            .push((r as u32, tid));
    }

    // Candidate pairs per table.
    let mut pairs_by_table: FxHashMap<u32, Vec<RowPair>> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    for (value, qrows) in &by_value {
        if let Some(pl) = index.posting_list(value) {
            stats.pl_lists_fetched += 1;
            for e in pl {
                if !tables.contains(&e.table.0) {
                    continue;
                }
                stats.pl_items_fetched += 1;
                for &(qrow, tuple_id) in qrows {
                    if seen.insert((e.table.0, e.row.0, qrow)) {
                        pairs_by_table.entry(e.table.0).or_default().push(RowPair {
                            candidate_row: e.row,
                            query_row: RowId(qrow),
                            tuple_id,
                        });
                    }
                }
            }
        }
    }

    let mut candidates: Vec<(u32, Vec<RowPair>)> = pairs_by_table.into_iter().collect();
    candidates.sort_unstable_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    stats.candidate_tables = candidates.len();

    let mut topk = TopK::new(k);
    for (t, pairs) in candidates {
        if topk.is_full() && pairs.len() as u64 <= topk.min_joinability() {
            stats.stopped_early_rule1 = true;
            break;
        }
        stats.tables_evaluated += 1;
        stats.rows_passed_filter += pairs.len();
        let outcome =
            verify_table_joinability(corpus.table(TableId(t)), query, q_cols, &pairs, 10_000);
        stats.rows_verified_joinable += outcome.true_positive_pairs;
        stats.false_positive_rows += outcome.pairs_checked - outcome.true_positive_pairs;
        topk.update(TableId(t), outcome.joinability);
    }
    Verified { topk }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_core::MateDiscovery;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    fn setup() -> (Corpus, InvertedIndex, Xash, JosieEngine, Table) {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("best", ["f", "l"])
                .row(["muhammad", "lee"])
                .row(["ansel", "adams"])
                .row(["helmut", "newton"])
                .build(),
        );
        corpus.add_table(
            TableBuilder::new("half", ["f", "l"])
                .row(["muhammad", "lee"])
                .row(["ansel", "nope"])
                .build(),
        );
        corpus.add_table(TableBuilder::new("noise", ["x"]).row(["unrelated"]).build());
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        let josie = JosieEngine::build(&index);
        let query = TableBuilder::new("q", ["a", "b"])
            .row(["muhammad", "lee"])
            .row(["ansel", "adams"])
            .row(["helmut", "newton"])
            .build();
        (corpus, index, hasher, josie, query)
    }

    #[test]
    fn scr_josie_finds_the_best_table() {
        let (corpus, index, hasher, josie, query) = setup();
        let cols = [ColId(0), ColId(1)];
        let sj = ScrJosieDiscovery::new(&corpus, &index, &josie);
        let r = sj.discover(&query, &cols, 2);
        let mate = MateDiscovery::new(&corpus, &index, &hasher).discover(&query, &cols, 2);
        assert_eq!(r.top_k, mate.top_k);
        assert_eq!(r.top_k[0].table, TableId(0));
        assert_eq!(r.top_k[0].joinability, 3);
    }

    #[test]
    fn mcr_josie_finds_the_best_table() {
        let (corpus, index, _, josie, query) = setup();
        let cols = [ColId(0), ColId(1)];
        let mj = McrJosieDiscovery::new(&corpus, &index, &josie);
        let r = mj.discover(&query, &cols, 2);
        assert_eq!(r.top_k[0].table, TableId(0));
        assert_eq!(r.top_k[0].joinability, 3);
        assert_eq!(r.top_k[1].table, TableId(1));
        assert_eq!(r.top_k[1].joinability, 1);
    }

    #[test]
    fn candidate_factor_can_miss_tables() {
        // With factor 1 and k = 1, JOSIE proposes only the single best
        // column; tables beyond it are invisible — the documented weakness.
        let (corpus, index, _, josie, query) = setup();
        let cols = [ColId(0), ColId(1)];
        let sj = ScrJosieDiscovery::new(&corpus, &index, &josie).with_candidate_factor(1);
        let r = sj.discover(&query, &cols, 1);
        assert_eq!(r.top_k.len(), 1); // still finds the best here
        assert!(r.stats.candidate_tables <= 2);
    }

    #[test]
    fn names() {
        let (corpus, index, _, josie, _) = setup();
        assert_eq!(
            ScrJosieDiscovery::new(&corpus, &index, &josie).system_name(),
            "SCR Josie"
        );
        assert_eq!(
            McrJosieDiscovery::new(&corpus, &index, &josie).system_name(),
            "MCR Josie"
        );
    }

    #[test]
    fn empty_query() {
        let (corpus, index, _, josie, _) = setup();
        let q = TableBuilder::new("q", ["a", "b"]).row(["zz", "yy"]).build();
        let r =
            ScrJosieDiscovery::new(&corpus, &index, &josie).discover(&q, &[ColId(0), ColId(1)], 3);
        assert!(r.top_k.is_empty());
    }
}
