//! A from-scratch JOSIE-style top-k overlap engine.
//!
//! JOSIE (Zhu et al., SIGMOD 2019) answers: *given a query set of tokens,
//! which columns of the corpus have the largest overlap with it?* Its index
//! maps tokens to the columns (sets) containing them. This implementation
//! keeps JOSIE's central optimization: posting lists are processed in
//! ascending-frequency order, and once the number of unprocessed lists can
//! no longer lift an unseen column into the top-k, **new candidates are
//! frozen out** and only existing counts are updated (prefix-filter
//! early termination).
//!
//! The paper adapts JOSIE to n-ary discovery in two ways (see
//! [`crate::josie_adapt`]); both need exactly this top-k column primitive.

use mate_hash::fx::FxHashMap;
use mate_index::InvertedIndex;

/// A column reference `(table, column)` — JOSIE's set id.
pub type ColumnRef = (u32, u32);

/// Statistics of one JOSIE query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JosieStats {
    /// Posting lists read.
    pub lists_read: usize,
    /// Posting entries scanned.
    pub postings_scanned: usize,
    /// Lists processed after candidate freezing kicked in.
    pub lists_after_freeze: usize,
}

/// The JOSIE engine: token → distinct containing columns.
#[derive(Debug)]
pub struct JosieEngine {
    map: FxHashMap<Box<str>, Vec<ColumnRef>>,
}

impl JosieEngine {
    /// Derives a JOSIE index from the MATE inverted index (the paper notes
    /// JOSIE's own index does not keep row information, so it maps values to
    /// *columns*).
    pub fn build(index: &InvertedIndex) -> Self {
        let mut map: FxHashMap<Box<str>, Vec<ColumnRef>> = FxHashMap::default();
        for (value, pl) in index.iter_values() {
            let mut cols: Vec<ColumnRef> = pl.iter().map(|e| (e.table.0, e.col.0)).collect();
            cols.sort_unstable();
            cols.dedup();
            map.insert(value.into(), cols);
        }
        JosieEngine { map }
    }

    /// Number of indexed tokens.
    pub fn num_tokens(&self) -> usize {
        self.map.len()
    }

    /// Top-`k` columns by overlap with the (distinct) `tokens`, sorted by
    /// overlap descending (ties: lower column ref first).
    pub fn top_k_columns(&self, tokens: &[&str], k: usize) -> (Vec<(ColumnRef, u32)>, JosieStats) {
        let mut stats = JosieStats::default();

        // Distinct tokens with non-empty posting lists, by frequency asc.
        let mut lists: Vec<&Vec<ColumnRef>> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for &t in tokens {
                if !t.is_empty() && seen.insert(t) {
                    if let Some(pl) = self.map.get(t) {
                        lists.push(pl);
                    }
                }
            }
        }
        lists.sort_unstable_by_key(|pl| pl.len());
        let m = lists.len();

        let mut counts: FxHashMap<ColumnRef, u32> = FxHashMap::default();
        let mut frozen = false;
        for (i, pl) in lists.into_iter().enumerate() {
            stats.lists_read += 1;
            if frozen {
                stats.lists_after_freeze += 1;
            }
            for col in pl {
                stats.postings_scanned += 1;
                if frozen {
                    if let Some(c) = counts.get_mut(col) {
                        *c += 1;
                    }
                } else {
                    *counts.entry(*col).or_insert(0) += 1;
                }
            }
            // An unseen candidate could reach at most the number of
            // remaining lists; once that bound cannot beat the current k-th
            // best, freeze the candidate set.
            if !frozen && counts.len() >= k {
                let remaining = (m - i - 1) as u32;
                let kth = kth_best(&counts, k);
                if remaining <= kth {
                    frozen = true;
                }
            }
        }

        let mut result: Vec<(ColumnRef, u32)> = counts.into_iter().collect();
        result.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        result.truncate(k);
        (result, stats)
    }
}

/// The k-th largest count (1-based); 0 if fewer than k candidates.
fn kth_best(counts: &FxHashMap<ColumnRef, u32>, k: usize) -> u32 {
    if counts.len() < k {
        return 0;
    }
    let mut v: Vec<u32> = counts.values().copied().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::{Corpus, TableBuilder};

    fn engine() -> JosieEngine {
        let mut corpus = Corpus::new();
        // t0c0 = {a,b,c,d}; t1c0 = {a,b}; t2c0 = {a,x,y}; t2c1 = {z,w,q}
        corpus.add_table(
            TableBuilder::new("t0", ["s"])
                .row(["a"])
                .row(["b"])
                .row(["c"])
                .row(["d"])
                .build(),
        );
        corpus.add_table(TableBuilder::new("t1", ["s"]).row(["a"]).row(["b"]).build());
        corpus.add_table(
            TableBuilder::new("t2", ["s", "u"])
                .row(["a", "z"])
                .row(["x", "w"])
                .row(["y", "q"])
                .build(),
        );
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        JosieEngine::build(&index)
    }

    #[test]
    fn overlap_ranking() {
        let e = engine();
        let (top, _) = e.top_k_columns(&["a", "b", "c"], 3);
        assert_eq!(top[0], ((0, 0), 3)); // t0c0 ⊇ {a,b,c}
        assert_eq!(top[1], ((1, 0), 2)); // t1c0 ⊇ {a,b}
        assert_eq!(top[2], ((2, 0), 1)); // t2c0 ∋ a
    }

    #[test]
    fn duplicates_and_misses_ignored() {
        let e = engine();
        let (top, _) = e.top_k_columns(&["a", "a", "nope", ""], 2);
        assert_eq!(top[0].1, 1); // overlap counts distinct tokens
    }

    #[test]
    fn k_truncates() {
        let e = engine();
        let (top, _) = e.top_k_columns(&["a", "b"], 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, (0, 0));
    }

    #[test]
    fn freezing_matches_exhaustive() {
        // Build a wider corpus and compare frozen top-k vs brute force.
        let mut corpus = Corpus::new();
        for t in 0..30u32 {
            let mut b = TableBuilder::new(format!("t{t}"), ["c"]);
            for v in 0..=(t % 10) {
                b = b.row([format!("tok{v}")]);
            }
            corpus.add_table(b.build());
        }
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        let e = JosieEngine::build(&index);
        let tokens: Vec<String> = (0..10).map(|v| format!("tok{v}")).collect();
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();

        let (top, stats) = e.top_k_columns(&refs, 3);
        // Brute force overlaps.
        let mut brute: Vec<(ColumnRef, u32)> =
            (0..30u32).map(|t| ((t, 0u32), (t % 10) + 1)).collect();
        brute.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        brute.truncate(3);
        assert_eq!(top, brute);
        assert_eq!(stats.lists_read, 10);
    }

    #[test]
    fn num_tokens() {
        let e = engine();
        assert_eq!(e.num_tokens(), 9); // a b c d x y z w q
    }
}
