//! Brute-force ground truth.
//!
//! Computes the exact joinability of **every** corpus table by exhaustive
//! verification — no index, no filtering, no pruning. Used as the reference
//! in correctness tests (MATE and the baselines must return the same top-k
//! joinability scores) and as the "Ideal system" bar of Figure 5 (an oracle
//! filter passes exactly the joinable rows: precision 1.0).

use mate_core::joinability::{verify_table_joinability, RowPair};
use mate_core::{TableResult, TopK};
use mate_hash::fx::{FxHashMap, FxHashSet};
use mate_table::{ColId, Corpus, RowId, Table};

/// Exhaustively computes the top-`k` joinable tables.
pub fn oracle_topk(corpus: &Corpus, query: &Table, q_cols: &[ColId], k: usize) -> Vec<TableResult> {
    let mut topk = TopK::new(k);
    for (tid, j) in oracle_all(corpus, query, q_cols) {
        topk.update(tid, j);
    }
    topk.into_sorted()
}

/// Exhaustively computes the joinability of every table (including zeros).
pub fn oracle_all(
    corpus: &Corpus,
    query: &Table,
    q_cols: &[ColId],
) -> Vec<(mate_table::TableId, u64)> {
    // Precompute query tuples (complete keys only) and their ids.
    let mut tuples: Vec<(u32, Vec<&str>, u32)> = Vec::new(); // (qrow, tuple, tuple_id)
    let mut tuple_ids: FxHashMap<Vec<&str>, u32> = FxHashMap::default();
    'rows: for r in 0..query.num_rows() {
        let mut tuple = Vec::with_capacity(q_cols.len());
        for &q in q_cols {
            let v = query.cell(RowId::from(r), q);
            if v.is_empty() {
                continue 'rows;
            }
            tuple.push(v);
        }
        let next = tuple_ids.len() as u32;
        let tid = *tuple_ids.entry(tuple.clone()).or_insert(next);
        tuples.push((r as u32, tuple, tid));
    }

    let mut out = Vec::with_capacity(corpus.len());
    for (tid, table) in corpus.iter() {
        let mut pairs: Vec<RowPair> = Vec::new();
        for tr in 0..table.num_rows() {
            // Cheap prefilter: the row must contain every distinct key value.
            let row_values: FxHashSet<&str> = table
                .row_iter(RowId::from(tr))
                .filter(|v| !v.is_empty())
                .collect();
            for (qr, tuple, tuple_id) in &tuples {
                if tuple.iter().all(|v| row_values.contains(v)) {
                    pairs.push(RowPair {
                        candidate_row: RowId::from(tr),
                        query_row: RowId(*qr),
                        tuple_id: *tuple_id,
                    });
                }
            }
        }
        let outcome = verify_table_joinability(table, query, q_cols, &pairs, 100_000);
        out.push((tid, outcome.joinability));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_table::{TableBuilder, TableId};

    #[test]
    fn figure1_ground_truth() {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("T1", ["Vorname", "Nachname", "Land", "Besetzung"])
                .row(["Helmut", "Newton", "Germany", "Photographer"])
                .row(["Muhammad", "Lee", "US", "Dancer"])
                .row(["Ansel", "Adams", "UK", "Dancer"])
                .row(["Ansel", "Adams", "US", "Photographer"])
                .row(["Muhammad", "Ali", "US", "Boxer"])
                .row(["Muhammad", "Lee", "Germany", "Birder"])
                .row(["Gretchen", "Lee", "Germany", "Artist"])
                .row(["Adam", "Sandler", "US", "Actor"])
                .build(),
        );
        let query = TableBuilder::new("d", ["F", "L", "C"])
            .row(["Muhammad", "Lee", "US"])
            .row(["Ansel", "Adams", "UK"])
            .row(["Ansel", "Adams", "US"])
            .row(["Muhammad", "Lee", "Germany"])
            .row(["Helmut", "Newton", "Germany"])
            .build();
        let r = oracle_topk(&corpus, &query, &[ColId(0), ColId(1), ColId(2)], 1);
        assert_eq!(r[0].table, TableId(0));
        assert_eq!(r[0].joinability, 5);
    }

    #[test]
    fn oracle_all_includes_zeros() {
        let mut corpus = Corpus::new();
        corpus.add_table(TableBuilder::new("a", ["x"]).row(["hit"]).build());
        corpus.add_table(TableBuilder::new("b", ["x"]).row(["miss"]).build());
        let query = TableBuilder::new("q", ["v"]).row(["hit"]).build();
        let all = oracle_all(&corpus, &query, &[ColId(0)]);
        assert_eq!(all, vec![(TableId(0), 1), (TableId(1), 0)]);
    }
}
