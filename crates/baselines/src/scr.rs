//! SCR — Single-Column Retrieval (§7.1.1).
//!
//! SCR is Algorithm 1 minus the super key: it keeps the initial-column
//! selection and both table-filtering rules, but every fetched candidate row
//! is verified by exact value comparison. The gap between SCR and MATE in
//! Table 2 / Figure 4 is therefore exactly the value of row filtering.

use crate::system::DiscoverySystem;
use mate_core::{DiscoveryResult, MateConfig, MateDiscovery};
use mate_hash::RowHasher;
use mate_index::InvertedIndex;
use mate_table::{ColId, Corpus, Table};

/// The SCR baseline system.
pub struct ScrDiscovery<'a> {
    inner: MateDiscovery<'a>,
}

impl<'a> ScrDiscovery<'a> {
    /// Creates an SCR system over the same corpus/index as MATE.
    ///
    /// The hasher is required only because the shared engine validates it
    /// against the index; SCR never evaluates super keys.
    pub fn new(corpus: &'a Corpus, index: &'a InvertedIndex, hasher: &'a dyn RowHasher) -> Self {
        let config = MateConfig {
            row_filtering: false,
            ..Default::default()
        };
        ScrDiscovery {
            inner: MateDiscovery::with_config(corpus, index, hasher, config),
        }
    }
}

impl DiscoverySystem for ScrDiscovery<'_> {
    fn system_name(&self) -> String {
        "SCR".to_string()
    }

    fn discover(&self, query: &Table, q_cols: &[ColId], k: usize) -> DiscoveryResult {
        self.inner.discover(query, q_cols, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    fn setup() -> (Corpus, InvertedIndex, Xash) {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("good", ["f", "l"])
                .row(["muhammad", "lee"])
                .row(["ansel", "adams"])
                .build(),
        );
        corpus.add_table(
            TableBuilder::new("fp", ["f", "l"])
                .row(["muhammad", "ali"])
                .row(["ansel", "other"])
                .build(),
        );
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        (corpus, index, hasher)
    }

    #[test]
    fn same_results_as_mate_more_work() {
        let (corpus, index, hasher) = setup();
        let query = TableBuilder::new("q", ["a", "b"])
            .row(["muhammad", "lee"])
            .row(["ansel", "adams"])
            .build();
        let cols = [ColId(0), ColId(1)];

        let mate = MateDiscovery::new(&corpus, &index, &hasher);
        let scr = ScrDiscovery::new(&corpus, &index, &hasher);
        let rm = mate.discover(&query, &cols, 2);
        let rs = scr.discover(&query, &cols, 2);

        assert_eq!(rm.top_k, rs.top_k);
        // SCR never consults the filter...
        assert_eq!(rs.stats.rows_filter_checked, 0);
        // ...so every fetched pair reaches verification; MATE passes fewer
        // or equal.
        assert!(rm.stats.rows_passed_filter <= rs.stats.rows_passed_filter);
        // The FP table's rows are false positives for SCR.
        assert!(rs.stats.false_positive_rows >= 2);
    }

    #[test]
    fn name() {
        let (corpus, index, hasher) = setup();
        assert_eq!(
            ScrDiscovery::new(&corpus, &index, &hasher).system_name(),
            "SCR"
        );
    }
}
