//! Synthetic data-lake and query-workload generation.
//!
//! The paper evaluates on the Dresden Web Table Corpus (145M web tables),
//! the German Open Data repository (17k wide/long tables), a School corpus
//! (335 very large tables), and Kaggle query tables. None of these are
//! shippable here, so this crate builds laptop-scale lakes with the same
//! *structural* properties the evaluation depends on (see DESIGN.md):
//!
//! * **Value reuse across tables** — a shared vocabulary sampled under a
//!   Zipf distribution ([`zipf`]), so posting lists have the paper's
//!   power-law shape (§7.5.4 relies on this explicitly).
//! * **Column domains** — the vocabulary is partitioned into domains and
//!   each column draws from one domain ([`words`], [`generator`]), matching
//!   the premise "each domain has unique syntactic features" XASH exploits.
//! * **Planted joins** — per query table, a controlled number of corpus
//!   tables share full composite-key tuples (with shuffled column order, so
//!   the mapping search is exercised) — the true positives.
//! * **Planted FP tables** — tables that contain the individual key values
//!   but in *wrong combinations*: unary hits that only super keys can prune.
//!   These drive the up-to-1000× FP-row ratios the paper reports.
//!
//! [`workload`] assembles the eight query sets of Table 1 at configurable
//! scale.

#![warn(missing_docs)]

pub mod generator;
pub mod profile;
pub mod words;
pub mod workload;
pub mod zipf;

pub use generator::{GeneratedQuery, LakeGenerator, QuerySpec};
pub use profile::{CorpusProfile, LakeSpec};
pub use workload::{QuerySet, StandardLakes, WorkloadScale};
pub use zipf::ZipfSampler;
