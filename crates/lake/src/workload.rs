//! The standard workloads: Table 1 of the paper at configurable scale.
//!
//! Eight query sets over three corpora: WT(10)/WT(100)/WT(1000) and Kaggle
//! against the web-table corpus, OD(100)/OD(1000)/OD(10000) against the
//! open-data corpus, and School against the school corpus. The absolute
//! sizes are scaled to laptop budgets; the *relative* shape (cardinality
//! ladder per set, corpus shapes, FP pressure) mirrors the paper.

use crate::generator::{GeneratedQuery, LakeGenerator, QuerySpec};
use crate::profile::{CorpusProfile, LakeSpec};
use mate_table::Corpus;

/// Overall workload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadScale {
    /// Tiny: seconds to build and query — integration tests.
    Smoke,
    /// Default benchmark scale: minutes for the full suite.
    Small,
    /// Larger runs for stable medians.
    Full,
}

impl WorkloadScale {
    fn queries_per_set(self) -> usize {
        match self {
            WorkloadScale::Smoke => 3,
            WorkloadScale::Small => 8,
            WorkloadScale::Full => 20,
        }
    }

    fn noise(self, base: usize) -> usize {
        match self {
            WorkloadScale::Smoke => base / 20,
            WorkloadScale::Small => base,
            WorkloadScale::Full => base * 3,
        }
    }

    fn shrink(self, n: usize) -> usize {
        match self {
            WorkloadScale::Smoke => (n / 8).max(3),
            WorkloadScale::Small => n,
            WorkloadScale::Full => n,
        }
    }
}

/// One named query set (a row of Table 1).
#[derive(Debug)]
pub struct QuerySet {
    /// Display name, e.g. "WT (100)".
    pub name: String,
    /// Which corpus it runs against ("webtables", "opendata", "school").
    pub corpus: &'static str,
    /// The generated queries with ground truth.
    pub queries: Vec<GeneratedQuery>,
}

impl QuerySet {
    /// Average per-key-column cardinality across queries (Table 1 col 4).
    pub fn avg_cardinality(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .queries
            .iter()
            .map(|q| mate_table::stats::avg_cardinality(&q.table, &q.key))
            .sum();
        total / self.queries.len() as f64
    }

    /// Average planted best joinability (Table 1 col 5's analogue).
    pub fn avg_planted_joinability(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.planted_best as f64)
            .sum::<f64>()
            / self.queries.len() as f64
    }
}

/// The three corpora plus all eight query sets.
#[derive(Debug)]
pub struct StandardLakes {
    /// DWTC stand-in.
    pub webtables: Corpus,
    /// German-Open-Data stand-in.
    pub opendata: Corpus,
    /// School-corpus stand-in.
    pub school: Corpus,
    /// All query sets in Table 1 order.
    pub sets: Vec<QuerySet>,
}

impl StandardLakes {
    /// Builds everything deterministically from `seed`.
    pub fn build(scale: WorkloadScale, seed: u64) -> Self {
        let nq = scale.queries_per_set();

        // ---------------- web tables ------------------------------------
        let mut wt_gen = LakeGenerator::new(LakeSpec::new(CorpusProfile::web_tables(0), seed));
        let mut webtables = Corpus::new();
        let mut sets = Vec::new();

        let wt_cfg = |card: usize, rows: usize| QuerySpec {
            rows,
            key_size: 2,
            payload_cols: 2,
            column_cardinality: card,
            column_cardinalities: None,
            joinable_tables: 8,
            share_range: (0.2, 0.9),
            duplication: (1, 2),
            fp_tables: 60,
            fp_rows: (10, 50),
            hard_fp_fraction: 0.15,
            noise_rows: (4, 20),
        };
        for (name, card, rows) in [
            ("WT (10)", 3, 8),
            ("WT (100)", 16, 45),
            ("WT (1000)", 150, scale.shrink(400)),
        ] {
            let queries = (0..nq)
                .map(|_| wt_gen.generate_query(&mut webtables, &wt_cfg(card, rows)))
                .collect();
            sets.push(QuerySet {
                name: name.to_string(),
                corpus: "webtables",
                queries,
            });
        }
        // Kaggle-style: few, large, general-content query tables vs WT.
        {
            let spec = QuerySpec {
                rows: scale.shrink(1200),
                column_cardinality: 300,
                joinable_tables: 10,
                fp_tables: 40,
                fp_rows: (20, 60),
                ..wt_cfg(300, 1200)
            };
            let queries = (0..(nq / 2).max(2))
                .map(|_| wt_gen.generate_query(&mut webtables, &spec))
                .collect();
            sets.push(QuerySet {
                name: "Kaggle".to_string(),
                corpus: "webtables",
                queries,
            });
        }
        wt_gen.generate_noise(&mut webtables, scale.noise(2500));

        // ---------------- open data -------------------------------------
        let mut od_gen = LakeGenerator::new(LakeSpec::new(
            CorpusProfile::open_data(0),
            seed ^ 0x9e3779b9,
        )); // distinct stream
        let mut opendata = Corpus::new();
        let od_cfg = |card: usize, rows: usize| QuerySpec {
            rows,
            key_size: 2,
            payload_cols: 4,
            column_cardinality: card,
            column_cardinalities: None,
            joinable_tables: 10,
            share_range: (0.3, 0.95),
            duplication: (1, 4),
            fp_tables: 45,
            fp_rows: (40, 150),
            hard_fp_fraction: 0.15,
            noise_rows: (20, 80),
        };
        for (name, card, rows) in [
            ("OD (100)", 15, 60),
            ("OD (1000)", 120, scale.shrink(400)),
            ("OD (10000)", 350, scale.shrink(1200)),
        ] {
            let queries = (0..nq)
                .map(|_| od_gen.generate_query(&mut opendata, &od_cfg(card, rows)))
                .collect();
            sets.push(QuerySet {
                name: name.to_string(),
                corpus: "opendata",
                queries,
            });
        }
        od_gen.generate_noise(&mut opendata, scale.noise(300));

        // ---------------- school ----------------------------------------
        let mut school_gen =
            LakeGenerator::new(LakeSpec::new(CorpusProfile::school(0), seed ^ 0x51ed2701));
        let mut school = Corpus::new();
        {
            let spec = QuerySpec {
                rows: scale.shrink(2500),
                key_size: 2,
                payload_cols: 6,
                column_cardinality: 250,
                column_cardinalities: None,
                joinable_tables: 6,
                share_range: (0.4, 0.95),
                duplication: (1, 3),
                fp_tables: 10,
                fp_rows: (400, 1500),
                hard_fp_fraction: 0.15,
                noise_rows: (200, 800),
            };
            let queries = (0..(nq / 2).max(2))
                .map(|_| school_gen.generate_query(&mut school, &spec))
                .collect();
            sets.push(QuerySet {
                name: "School".to_string(),
                corpus: "school",
                queries,
            });
        }
        school_gen.generate_noise(&mut school, scale.noise(12));

        StandardLakes {
            webtables,
            opendata,
            school,
            sets,
        }
    }

    /// The corpus a query set runs against.
    pub fn corpus_of(&self, set: &QuerySet) -> &Corpus {
        match set.corpus {
            "webtables" => &self.webtables,
            "opendata" => &self.opendata,
            "school" => &self.school,
            other => panic!("unknown corpus {other}"),
        }
    }

    /// `(set, corpus)` pairs in Table 1 order.
    pub fn iter_sets(&self) -> impl Iterator<Item = (&QuerySet, &Corpus)> {
        self.sets.iter().map(move |s| (s, self.corpus_of(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_builds_all_sets() {
        let lakes = StandardLakes::build(WorkloadScale::Smoke, 7);
        assert_eq!(lakes.sets.len(), 8);
        let names: Vec<&str> = lakes.sets.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "WT (10)",
                "WT (100)",
                "WT (1000)",
                "Kaggle",
                "OD (100)",
                "OD (1000)",
                "OD (10000)",
                "School"
            ]
        );
        assert!(lakes.webtables.len() > 100);
        assert!(lakes.opendata.len() > 10);
        assert!(lakes.school.len() > 4);
    }

    #[test]
    fn cardinality_ladder_increases() {
        let lakes = StandardLakes::build(WorkloadScale::Smoke, 7);
        let wt10 = lakes.sets[0].avg_cardinality();
        let wt100 = lakes.sets[1].avg_cardinality();
        let wt1000 = lakes.sets[2].avg_cardinality();
        assert!(wt10 < wt100, "{wt10} !< {wt100}");
        assert!(wt100 < wt1000, "{wt100} !< {wt1000}");
    }

    #[test]
    fn queries_have_ground_truth() {
        let lakes = StandardLakes::build(WorkloadScale::Smoke, 7);
        for (set, corpus) in lakes.iter_sets() {
            for q in &set.queries {
                assert!(!q.planted_tables.is_empty(), "{}", set.name);
                assert!(q.planted_best >= 1);
                for &t in &q.planted_tables {
                    assert!(t.index() < corpus.len());
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = StandardLakes::build(WorkloadScale::Smoke, 9);
        let b = StandardLakes::build(WorkloadScale::Smoke, 9);
        assert_eq!(a.webtables.len(), b.webtables.len());
        assert_eq!(a.sets[0].queries[0].table, b.sets[0].queries[0].table);
    }
}
