//! The lake generator: noise tables, query tables, planted joinable tables,
//! and planted false-positive tables.

use crate::profile::LakeSpec;
use crate::words::WordGenerator;
use crate::zipf::ZipfSampler;
use mate_table::{ColId, Column, Corpus, Table, TableId};
use rand::prelude::*;

/// Parameters for one query table and its planted neighborhood.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Rows of the query table.
    pub rows: usize,
    /// Composite-key width |Q|.
    pub key_size: usize,
    /// Non-key payload columns.
    pub payload_cols: usize,
    /// Target distinct values per key column (Table 1's "Cardinality").
    pub column_cardinality: usize,
    /// Optional per-key-column cardinality override (length must equal
    /// `key_size`); enables heterogeneous keys for the §7.5.4 experiment.
    pub column_cardinalities: Option<Vec<usize>>,
    /// Number of planted joinable corpus tables.
    pub joinable_tables: usize,
    /// Fraction range of the query's distinct key tuples each planted table
    /// shares.
    pub share_range: (f64, f64),
    /// Range of copies of each shared tuple in a planted table (open-data
    /// tables repeat keys; drives joins wider than the key cardinality).
    pub duplication: (usize, usize),
    /// Number of planted false-positive tables (unary hits, wrong combos).
    pub fp_tables: usize,
    /// Rows per FP table.
    pub fp_rows: (usize, usize),
    /// Fraction of FP rows built from *same-domain* key values in wrong
    /// combinations (the adversarial near-miss case the paper's conclusion
    /// describes as XASH's residual FP mode). The remainder are the common
    /// case: one real key value, all other cells from unrelated domains
    /// ("candidate rows ... only contain one value of the key value
    /// combination", §3).
    pub hard_fp_fraction: f64,
    /// Extra noise rows mixed into each planted joinable table.
    pub noise_rows: (usize, usize),
}

impl Default for QuerySpec {
    fn default() -> Self {
        QuerySpec {
            rows: 50,
            key_size: 2,
            payload_cols: 2,
            column_cardinality: 20,
            column_cardinalities: None,
            joinable_tables: 8,
            share_range: (0.2, 0.9),
            duplication: (1, 2),
            fp_tables: 20,
            fp_rows: (10, 40),
            hard_fp_fraction: 0.15,
            noise_rows: (5, 30),
        }
    }
}

/// A generated query table plus ground-truth information about what was
/// planted for it.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The query table.
    pub table: Table,
    /// The composite-key columns within [`Self::table`].
    pub key: Vec<ColId>,
    /// Ids of the planted joinable tables.
    pub planted_tables: Vec<TableId>,
    /// Distinct shared tuples of the *best* planted table — a lower bound on
    /// the achievable top-1 joinability (noise can only add matches).
    pub planted_best: u64,
    /// Number of distinct key tuples in the query table.
    pub distinct_tuples: u64,
}

/// Deterministic generator for one corpus and its query workloads.
#[derive(Debug)]
pub struct LakeGenerator {
    rng: StdRng,
    domains: Vec<Vec<String>>,
    zipf: ZipfSampler,
    spec: LakeSpec,
    name_counter: usize,
}

impl LakeGenerator {
    /// Creates a generator; vocabulary and domains are built eagerly.
    pub fn new(spec: LakeSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let words = WordGenerator::new();
        let vocab = words.vocabulary(&mut rng, spec.profile.vocab_size);
        let domain_size = spec.profile.vocab_size / spec.profile.num_domains;
        assert!(domain_size > 0, "vocabulary smaller than domain count");
        let domains: Vec<Vec<String>> = vocab
            .chunks(domain_size)
            .take(spec.profile.num_domains)
            .map(<[String]>::to_vec)
            .collect();
        let zipf = ZipfSampler::new(domain_size, spec.profile.zipf_exponent);
        LakeGenerator {
            rng,
            domains,
            zipf,
            spec,
            name_counter: 0,
        }
    }

    /// The corpus profile in use.
    pub fn profile(&self) -> &crate::profile::CorpusProfile {
        &self.spec.profile
    }

    fn fresh_name(&mut self, kind: &str) -> String {
        self.name_counter += 1;
        format!("{}_{}_{}", self.spec.profile.name, kind, self.name_counter)
    }

    /// Draws one value from domain `d` under the Zipf distribution.
    fn domain_value(&mut self, d: usize) -> String {
        let rank = self.zipf.sample(&mut self.rng);
        self.domains[d][rank].clone()
    }

    /// Picks a random domain outside the key domains (falls back to any
    /// domain if the key uses all of them).
    fn random_non_key_domain(&mut self, key_domains: &std::collections::HashSet<usize>) -> usize {
        if key_domains.len() >= self.domains.len() {
            return self.rng.random_range(0..self.domains.len());
        }
        loop {
            let d = self.rng.random_range(0..self.domains.len());
            if !key_domains.contains(&d) {
                return d;
            }
        }
    }

    /// Appends `n` background noise tables to `corpus`.
    pub fn generate_noise(&mut self, corpus: &mut Corpus, n: usize) {
        for _ in 0..n {
            let t = self.noise_table();
            corpus.add_table(t);
        }
    }

    /// Generates one noise table with the profile's shape.
    pub fn noise_table(&mut self) -> Table {
        let (cmin, cmax) = self.spec.profile.cols;
        let (rmin, rmax) = self.spec.profile.rows;
        let ncols = self.rng.random_range(cmin..=cmax);
        let nrows = self.rng.random_range(rmin..=rmax);
        let name = self.fresh_name("noise");
        let mut columns = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let d = self.rng.random_range(0..self.domains.len());
            let values: Vec<String> = (0..nrows).map(|_| self.domain_value(d)).collect();
            columns.push(Column {
                name: format!("c{c}"),
                values,
            });
        }
        Table::new(name, columns)
    }

    /// Generates a query table and plants its joinable and FP neighborhoods
    /// into `corpus`. Returns the query with ground truth.
    pub fn generate_query(&mut self, corpus: &mut Corpus, qs: &QuerySpec) -> GeneratedQuery {
        assert!(qs.key_size >= 1 && qs.key_size <= self.domains.len());
        assert!(qs.rows >= 1);

        // --- Key domains and per-column value pools ----------------------
        let mut domain_ids: Vec<usize> = (0..self.domains.len()).collect();
        domain_ids.shuffle(&mut self.rng);
        let key_domains: Vec<usize> = domain_ids[..qs.key_size].to_vec();
        let cardinalities: Vec<usize> = match &qs.column_cardinalities {
            Some(cs) => {
                assert_eq!(cs.len(), qs.key_size, "column_cardinalities length");
                cs.clone()
            }
            None => vec![qs.column_cardinality.max(1); qs.key_size],
        };
        // Each key column draws from a random subset ("pool") of its domain,
        // so pools mix frequent (Zipf-head) and rare values like real key
        // columns do.
        let pools: Vec<Vec<String>> = key_domains
            .iter()
            .zip(&cardinalities)
            .map(|(&d, &card)| {
                let mut idx: Vec<usize> = (0..self.domains[d].len()).collect();
                idx.shuffle(&mut self.rng);
                idx[..card.clamp(1, self.domains[d].len())]
                    .iter()
                    .map(|&i| self.domains[d][i].clone())
                    .collect()
            })
            .collect();

        // --- Query rows ---------------------------------------------------
        let mut key_rows: Vec<Vec<String>> = Vec::with_capacity(qs.rows);
        for _ in 0..qs.rows {
            let tuple: Vec<String> = pools
                .iter()
                .map(|pool| pool[self.rng.random_range(0..pool.len())].clone())
                .collect();
            key_rows.push(tuple);
        }
        let mut distinct: Vec<Vec<String>> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for t in &key_rows {
                if seen.insert(t.clone()) {
                    distinct.push(t.clone());
                }
            }
        }

        // --- Assemble the query table (key cols at random positions) -----
        let total_cols = qs.key_size + qs.payload_cols;
        let mut positions: Vec<usize> = (0..total_cols).collect();
        positions.shuffle(&mut self.rng);
        let key_positions: Vec<usize> = positions[..qs.key_size].to_vec();

        let mut columns: Vec<Column> = (0..total_cols)
            .map(|c| Column {
                name: format!("q{c}"),
                values: Vec::with_capacity(qs.rows),
            })
            .collect();
        for tuple in &key_rows {
            for (ki, &pos) in key_positions.iter().enumerate() {
                columns[pos].values.push(tuple[ki].clone());
            }
        }
        for (pos, col) in columns.iter_mut().enumerate() {
            if key_positions.contains(&pos) {
                continue;
            }
            let d = self.rng.random_range(0..self.domains.len());
            for _ in 0..qs.rows {
                let v = {
                    let rank = self.zipf.sample(&mut self.rng);
                    self.domains[d][rank].clone()
                };
                col.values.push(v);
            }
        }
        let query_table = Table::new(self.fresh_name("query"), columns);
        let key: Vec<ColId> = key_positions.iter().map(|&p| ColId::from(p)).collect();

        // --- Plant joinable tables ----------------------------------------
        let mut planted_tables = Vec::with_capacity(qs.joinable_tables);
        let mut planted_best = 0u64;
        for _ in 0..qs.joinable_tables {
            let frac = self.rng.random_range(qs.share_range.0..=qs.share_range.1);
            let share = ((distinct.len() as f64 * frac).round() as usize).clamp(1, distinct.len());
            let mut idx: Vec<usize> = (0..distinct.len()).collect();
            idx.shuffle(&mut self.rng);
            let shared: Vec<&Vec<String>> = idx[..share].iter().map(|&i| &distinct[i]).collect();

            let dup = self
                .rng
                .random_range(qs.duplication.0..=qs.duplication.1)
                .max(1);
            let noise_rows = self.rng.random_range(qs.noise_rows.0..=qs.noise_rows.1);
            let table = self.plant_joinable(&pools, &shared, dup, noise_rows);
            planted_best = planted_best.max(share as u64);
            planted_tables.push(corpus.add_table(table));
        }

        // --- Plant FP tables ------------------------------------------------
        if distinct.len() >= 2 && qs.key_size >= 2 {
            for _ in 0..qs.fp_tables {
                let rows = self.rng.random_range(qs.fp_rows.0..=qs.fp_rows.1);
                let table = self.plant_fp(&key_domains, &distinct, rows, qs.hard_fp_fraction);
                corpus.add_table(table);
            }
        }

        GeneratedQuery {
            table: query_table,
            key,
            planted_tables,
            planted_best,
            distinct_tuples: distinct.len() as u64,
        }
    }

    /// Builds a corpus table sharing `shared` key tuples (each duplicated
    /// `dup` times), with noise rows and extra columns, in shuffled column
    /// order.
    fn plant_joinable(
        &mut self,
        pools: &[Vec<String>],
        shared: &[&Vec<String>],
        dup: usize,
        noise_rows: usize,
    ) -> Table {
        let m = pools.len();
        let extra_cols = self.rng.random_range(1..=3usize);
        let total_cols = m + extra_cols;

        let mut rows: Vec<Vec<String>> = Vec::with_capacity(shared.len() * dup + noise_rows);
        for tuple in shared {
            for _ in 0..dup {
                rows.push((*tuple).clone());
            }
        }
        // Noise rows from the same column pools (realistic near-misses).
        for _ in 0..noise_rows {
            let tuple: Vec<String> = pools
                .iter()
                .map(|pool| pool[self.rng.random_range(0..pool.len())].clone())
                .collect();
            rows.push(tuple);
        }
        rows.shuffle(&mut self.rng);

        // Key columns at shuffled positions.
        let mut positions: Vec<usize> = (0..total_cols).collect();
        positions.shuffle(&mut self.rng);
        let key_positions = &positions[..m];

        let nrows = rows.len();
        let mut columns: Vec<Column> = (0..total_cols)
            .map(|c| Column {
                name: format!("c{c}"),
                values: Vec::with_capacity(nrows),
            })
            .collect();
        for row in &rows {
            for (ki, &pos) in key_positions.iter().enumerate() {
                columns[pos].values.push(row[ki].clone());
            }
        }
        for (pos, col) in columns.iter_mut().enumerate() {
            if key_positions.contains(&pos) {
                continue;
            }
            let d = self.rng.random_range(0..self.domains.len());
            for _ in 0..nrows {
                let rank = self.zipf.sample(&mut self.rng);
                col.values.push(self.domains[d][rank].clone());
            }
        }
        Table::new(self.fresh_name("joinable"), columns)
    }

    /// Builds a false-positive table: rows give unary hits on the key values
    /// without containing any full composite key.
    ///
    /// Two row shapes (§3's FP definition vs. the conclusion's near-miss
    /// observation): *easy* FP rows hold exactly one real key value, with
    /// every other cell drawn from unrelated domains; *hard* FP rows combine
    /// key values from different query tuples (same domains, wrong combos).
    fn plant_fp(
        &mut self,
        key_domains: &[usize],
        distinct: &[Vec<String>],
        rows: usize,
        hard_fraction: f64,
    ) -> Table {
        let m = key_domains.len();
        let tuple_set: std::collections::HashSet<&[String]> =
            distinct.iter().map(Vec::as_slice).collect();
        let key_domain_set: std::collections::HashSet<usize> =
            key_domains.iter().copied().collect();

        let mut out_rows: Vec<Vec<String>> = Vec::with_capacity(rows);
        let mut attempts = 0;
        while out_rows.len() < rows && attempts < rows * 10 {
            attempts += 1;
            let hard = self.rng.random::<f64>() < hard_fraction;
            let mut row: Vec<String> = if hard {
                // Wrong combination of real key values.
                (0..m)
                    .map(|ki| {
                        let t = self.rng.random_range(0..distinct.len());
                        distinct[t][ki].clone()
                    })
                    .collect()
            } else {
                // One real key value; the rest from unrelated domains.
                let hit = self.rng.random_range(0..m);
                let t = self.rng.random_range(0..distinct.len());
                (0..m)
                    .map(|ki| {
                        if ki == hit {
                            distinct[t][ki].clone()
                        } else {
                            let d = self.random_non_key_domain(&key_domain_set);
                            let rank = self.zipf.sample(&mut self.rng);
                            self.domains[d][rank].clone()
                        }
                    })
                    .collect()
            };
            if tuple_set.contains(row.as_slice()) {
                // Accidentally reassembled a real tuple; perturb one value.
                let ki = self.rng.random_range(0..m);
                row[ki] = self.domain_value(key_domains[ki]);
                if tuple_set.contains(row.as_slice()) {
                    continue;
                }
            }
            out_rows.push(row);
        }

        let extra_cols = self.rng.random_range(1..=2usize);
        let total_cols = m + extra_cols;
        let nrows = out_rows.len();
        let mut columns: Vec<Column> = (0..total_cols)
            .map(|c| Column {
                name: format!("c{c}"),
                values: Vec::with_capacity(nrows),
            })
            .collect();
        for row in &out_rows {
            for (ki, v) in row.iter().enumerate() {
                columns[ki].values.push(v.clone());
            }
        }
        for col in columns.iter_mut().skip(m) {
            let d = self.rng.random_range(0..self.domains.len());
            for _ in 0..nrows {
                let rank = self.zipf.sample(&mut self.rng);
                col.values.push(self.domains[d][rank].clone());
            }
        }
        Table::new(self.fresh_name("fp"), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CorpusProfile;
    use mate_table::RowId;

    fn generator() -> LakeGenerator {
        LakeGenerator::new(LakeSpec::new(CorpusProfile::web_tables(0), 42))
    }

    #[test]
    fn noise_tables_have_profile_shape() {
        let mut g = generator();
        let mut corpus = Corpus::new();
        g.generate_noise(&mut corpus, 20);
        assert_eq!(corpus.len(), 20);
        for (_, t) in corpus.iter() {
            assert!((2..=8).contains(&t.num_cols()));
            assert!((4..=30).contains(&t.num_rows()));
        }
    }

    #[test]
    fn query_generation_plants_ground_truth() {
        let mut g = generator();
        let mut corpus = Corpus::new();
        let qs = QuerySpec::default();
        let gq = g.generate_query(&mut corpus, &qs);
        assert_eq!(gq.key.len(), 2);
        assert_eq!(gq.table.num_rows(), 50);
        assert_eq!(gq.planted_tables.len(), 8);
        assert!(gq.planted_best >= 1);
        assert!(gq.distinct_tuples >= gq.planted_best);
        // joinable + fp tables landed in the corpus
        assert_eq!(corpus.len(), 8 + 20);
    }

    #[test]
    fn planted_tables_really_contain_shared_tuples() {
        let mut g = generator();
        let mut corpus = Corpus::new();
        let qs = QuerySpec {
            joinable_tables: 3,
            fp_tables: 0,
            ..Default::default()
        };
        let gq = g.generate_query(&mut corpus, &qs);

        // Collect query key tuples.
        let qtuples: std::collections::HashSet<Vec<&str>> = (0..gq.table.num_rows())
            .map(|r| {
                gq.key
                    .iter()
                    .map(|&c| gq.table.cell(RowId::from(r), c))
                    .collect::<Vec<_>>()
            })
            .collect();

        // Each planted table must contain at least one full tuple in some
        // column arrangement — check by value-set containment per row.
        for &tid in &gq.planted_tables {
            let t = corpus.table(tid);
            let mut found = false;
            'rows: for r in 0..t.num_rows() {
                let row_vals: std::collections::HashSet<&str> =
                    t.row_iter(RowId::from(r)).collect();
                for tuple in &qtuples {
                    if tuple.iter().all(|v| row_vals.contains(v)) {
                        found = true;
                        break 'rows;
                    }
                }
            }
            assert!(found, "planted table {tid} contains no shared tuple");
        }
    }

    #[test]
    fn fp_tables_contain_no_full_tuple_as_planted() {
        let mut g = generator();
        let mut corpus = Corpus::new();
        let qs = QuerySpec {
            joinable_tables: 0,
            fp_tables: 10,
            rows: 30,
            column_cardinality: 25,
            ..Default::default()
        };
        let gq = g.generate_query(&mut corpus, &qs);
        let qtuples: std::collections::HashSet<Vec<&str>> = (0..gq.table.num_rows())
            .map(|r| {
                gq.key
                    .iter()
                    .map(|&c| gq.table.cell(RowId::from(r), c))
                    .collect::<Vec<_>>()
            })
            .collect();
        // FP rows are built to avoid exact key-position tuples; verify on the
        // first m columns (the construction's key layout).
        let m = gq.key.len();
        for (_, t) in corpus.iter() {
            for r in 0..t.num_rows() {
                let tuple: Vec<&str> = (0..m)
                    .map(|c| t.cell(RowId::from(r), ColId::from(c)))
                    .collect();
                assert!(!qtuples.contains(&tuple), "FP table contains planted tuple");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let mut g = generator();
            let mut corpus = Corpus::new();
            g.generate_noise(&mut corpus, 5);
            let gq = g.generate_query(&mut corpus, &QuerySpec::default());
            (corpus, gq.table)
        };
        let (c1, q1) = build();
        let (c2, q2) = build();
        assert_eq!(q1, q2);
        assert_eq!(c1.len(), c2.len());
        for (id, t) in c1.iter() {
            assert_eq!(t, c2.table(id));
        }
    }

    #[test]
    fn single_column_key_supported() {
        let mut g = generator();
        let mut corpus = Corpus::new();
        let qs = QuerySpec {
            key_size: 1,
            fp_tables: 5,
            ..Default::default()
        };
        let gq = g.generate_query(&mut corpus, &qs);
        assert_eq!(gq.key.len(), 1);
        // FP tables are skipped for unary keys (no wrong combos possible).
        assert_eq!(corpus.len(), qs.joinable_tables);
    }

    #[test]
    fn wide_keys_supported() {
        let mut g = generator();
        let mut corpus = Corpus::new();
        let qs = QuerySpec {
            key_size: 5,
            payload_cols: 3,
            ..Default::default()
        };
        let gq = g.generate_query(&mut corpus, &qs);
        assert_eq!(gq.key.len(), 5);
        assert_eq!(gq.table.num_cols(), 8);
    }
}
