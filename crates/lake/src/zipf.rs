//! Zipf-distributed sampling.
//!
//! Posting-list lengths in real lakes follow a power law ("The heuristic
//! used in Mate performs better because of the fact that the number of PL
//! items per cell value follows the power-law distribution", §7.5.4). The
//! sampler precomputes the CDF once and draws with binary search.

use rand::{Rng, RngExt};

/// Samples ranks `0..n` with probability ∝ `1 / (rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is a single rank.
    pub fn is_empty(&self) -> bool {
        false // n > 0 enforced at construction
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point: first index with cdf[i] >= u.
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn skew_increases_head_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let flat = ZipfSampler::new(100, 0.0);
        let skewed = ZipfSampler::new(100, 1.5);
        let head =
            |z: &ZipfSampler, rng: &mut StdRng| (0..10_000).filter(|_| z.sample(rng) == 0).count();
        let h_flat = head(&flat, &mut rng);
        let h_skew = head(&skewed, &mut rng);
        assert!(h_flat < 300, "uniform head too heavy: {h_flat}");
        assert!(h_skew > 2000, "skewed head too light: {h_skew}");
    }

    #[test]
    fn all_ranks_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = ZipfSampler::new(7, 1.0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = ZipfSampler::new(1, 2.0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = ZipfSampler::new(50, 1.1);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn bad_exponent_rejected() {
        ZipfSampler::new(5, f64::NAN);
    }
}
