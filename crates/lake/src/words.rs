//! Synthetic value generation with realistic character statistics.
//!
//! XASH's character-selection step keys on *letter frequency*, so uniformly
//! random strings would flatter it unrealistically. Values are therefore
//! sampled from the English letter-frequency distribution, mixed with
//! numeric tokens, codes, and multi-word values — the shapes found in web
//! tables and open-data portals. Lengths are kept mostly under 17 characters
//! (the paper: >83% of DWTC/OD cell values fit the 17-bit length segment).

use rand::{Rng, RngExt};

/// English letter frequencies (per mille), a–z.
const LETTER_FREQ: [u32; 26] = [
    82, 15, 28, 43, 127, 22, 20, 61, 70, 2, 8, 40, 24, 67, 75, 19, 1, 60, 63, 91, 28, 10, 24, 2,
    20, 1,
];

/// Cumulative distribution over the letters.
fn letter_cdf() -> [u32; 26] {
    let mut cdf = [0u32; 26];
    let mut acc = 0;
    for (i, f) in LETTER_FREQ.iter().enumerate() {
        acc += f;
        cdf[i] = acc;
    }
    cdf
}

/// Generator for vocabulary tokens.
#[derive(Debug, Clone)]
pub struct WordGenerator {
    cdf: [u32; 26],
    total: u32,
}

impl Default for WordGenerator {
    fn default() -> Self {
        let cdf = letter_cdf();
        WordGenerator {
            total: cdf[25],
            cdf,
        }
    }
}

impl WordGenerator {
    /// Creates a generator.
    pub fn new() -> Self {
        WordGenerator::default()
    }

    /// Samples one letter by English frequency.
    pub fn letter<R: Rng + ?Sized>(&self, rng: &mut R) -> char {
        let u = rng.random_range(0..self.total);
        let idx = self.cdf.partition_point(|&c| c <= u);
        (b'a' + idx as u8) as char
    }

    /// Samples a pronounceable-ish word of `len` letters.
    pub fn word<R: Rng + ?Sized>(&self, rng: &mut R, len: usize) -> String {
        (0..len).map(|_| self.letter(rng)).collect()
    }

    /// Samples a word with a natural length (3–12, mode ~6).
    pub fn natural_word<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let len = 3 + rng.random_range(0..5usize) + rng.random_range(0..5usize);
        self.word(rng, len)
    }

    /// Samples a numeric token (1–8 digits).
    pub fn number<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let len = rng.random_range(1..=8usize);
        let mut s = String::with_capacity(len);
        for i in 0..len {
            let d = if i == 0 && len > 1 {
                rng.random_range(1..=9u8)
            } else {
                rng.random_range(0..=9u8)
            };
            s.push((b'0' + d) as char);
        }
        s
    }

    /// Samples a code token like `ab12cd` (letters and digits mixed).
    pub fn code<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let len = rng.random_range(4..=9usize);
        (0..len)
            .map(|_| {
                if rng.random_range(0..3u8) == 0 {
                    (b'0' + rng.random_range(0..=9u8)) as char
                } else {
                    self.letter(rng)
                }
            })
            .collect()
    }

    /// Samples one vocabulary token from the realistic mix:
    /// 60% single word, 15% two words, 15% number, 10% code.
    pub fn token<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        match rng.random_range(0..20u8) {
            0..=11 => self.natural_word(rng),
            12..=14 => format!("{} {}", self.natural_word(rng), self.natural_word(rng)),
            15..=17 => self.number(rng),
            _ => self.code(rng),
        }
    }

    /// Generates `n` *distinct* tokens.
    pub fn vocabulary<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<String> {
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        let mut salt = 0usize;
        while out.len() < n {
            let mut t = self.token(rng);
            if seen.contains(&t) {
                // Very common for short numbers; salt deterministically.
                t.push_str(&format!(" {salt}"));
                salt += 1;
                if seen.contains(&t) {
                    continue;
                }
            }
            seen.insert(t.clone());
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn letters_follow_frequency() {
        let g = WordGenerator::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 26];
        for _ in 0..50_000 {
            counts[g.letter(&mut rng) as usize - 'a' as usize] += 1;
        }
        // 'e' must be far more common than 'q'/'z'.
        assert!(counts[4] > 10 * counts[16].max(1));
        assert!(counts[4] > 10 * counts[25].max(1));
    }

    #[test]
    fn words_have_requested_length() {
        let g = WordGenerator::new();
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(g.word(&mut rng, 7).len(), 7);
    }

    #[test]
    fn natural_lengths_mostly_fit_length_segment() {
        let g = WordGenerator::new();
        let mut rng = StdRng::seed_from_u64(9);
        let short = (0..2000)
            .filter(|_| g.natural_word(&mut rng).chars().count() <= 17)
            .count();
        assert!(short >= 1990);
    }

    #[test]
    fn numbers_are_numeric() {
        let g = WordGenerator::new();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let n = g.number(&mut rng);
            assert!(n.chars().all(|c| c.is_ascii_digit()), "{n}");
            assert!(!n.is_empty() && n.len() <= 8);
        }
    }

    #[test]
    fn vocabulary_is_distinct() {
        let g = WordGenerator::new();
        let mut rng = StdRng::seed_from_u64(11);
        let v = g.vocabulary(&mut rng, 5000);
        assert_eq!(v.len(), 5000);
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn tokens_are_normalized_form() {
        // Tokens must already be lowercase/trimmed so that indexing them
        // verbatim equals their normalized form.
        let g = WordGenerator::new();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..200 {
            let t = g.token(&mut rng);
            assert_eq!(mate_table::normalize(&t), t);
        }
    }

    #[test]
    fn deterministic() {
        let g = WordGenerator::new();
        let a: Vec<String> = (0..10)
            .map(|_| g.token(&mut StdRng::seed_from_u64(13)))
            .collect();
        let b: Vec<String> = (0..10)
            .map(|_| g.token(&mut StdRng::seed_from_u64(13)))
            .collect();
        assert_eq!(a, b);
    }
}
