//! Corpus shape profiles.
//!
//! The two corpora of the paper differ sharply in shape — web tables are
//! many, narrow, and short; open-data tables are few, wide, and long; the
//! School corpus is tiny but each table is huge. The profiles capture those
//! shapes at laptop scale.

/// Shape parameters of a synthetic corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusProfile {
    /// Human-readable name ("webtables", "opendata", "school").
    pub name: &'static str,
    /// Number of background (noise) tables.
    pub noise_tables: usize,
    /// Columns per table (inclusive range).
    pub cols: (usize, usize),
    /// Rows per table (inclusive range).
    pub rows: (usize, usize),
    /// Shared vocabulary size.
    pub vocab_size: usize,
    /// Number of value domains the vocabulary is split into.
    pub num_domains: usize,
    /// Zipf exponent for in-domain value draws.
    pub zipf_exponent: f64,
}

impl CorpusProfile {
    /// Web-table-like corpus: many small narrow tables (DWTC stand-in).
    /// The paper's BF baseline uses `V = 5` (avg columns) here.
    pub fn web_tables(noise_tables: usize) -> Self {
        CorpusProfile {
            name: "webtables",
            noise_tables,
            cols: (2, 8),
            rows: (4, 30),
            vocab_size: 30_000,
            num_domains: 60,
            zipf_exponent: 1.05,
        }
    }

    /// Open-data-like corpus: fewer, wide, long tables (GovData stand-in).
    /// The paper's BF baseline uses `V = 26` here.
    pub fn open_data(noise_tables: usize) -> Self {
        CorpusProfile {
            name: "opendata",
            noise_tables,
            cols: (10, 33),
            rows: (50, 600),
            vocab_size: 40_000,
            num_domains: 80,
            zipf_exponent: 0.9,
        }
    }

    /// School-corpus-like: a handful of very large tables (27 cols, tens of
    /// thousands of rows in the paper; scaled down here).
    pub fn school(noise_tables: usize) -> Self {
        CorpusProfile {
            name: "school",
            noise_tables,
            cols: (20, 27),
            rows: (1_000, 4_000),
            vocab_size: 25_000,
            num_domains: 40,
            zipf_exponent: 0.8,
        }
    }

    /// Average column count (the `V` parameter for Bloom-filter baselines).
    pub fn avg_cols(&self) -> usize {
        (self.cols.0 + self.cols.1) / 2
    }
}

/// Top-level lake specification: a profile plus a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct LakeSpec {
    /// Corpus shape.
    pub profile: CorpusProfile,
    /// RNG seed — everything downstream is deterministic in this.
    pub seed: u64,
}

impl LakeSpec {
    /// Creates a spec.
    pub fn new(profile: CorpusProfile, seed: u64) -> Self {
        LakeSpec { profile, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_paper_shapes() {
        let wt = CorpusProfile::web_tables(100);
        let od = CorpusProfile::open_data(50);
        let school = CorpusProfile::school(5);
        assert!(wt.avg_cols() <= 6, "web tables are narrow");
        assert!(od.avg_cols() >= 20, "open data is wide");
        assert!(school.rows.1 > wt.rows.1 * 10, "school tables are huge");
        assert_eq!(wt.name, "webtables");
    }

    #[test]
    fn spec_roundtrip() {
        let s = LakeSpec::new(CorpusProfile::web_tables(10), 42);
        assert_eq!(s.seed, 42);
        assert_eq!(s.profile.noise_tables, 10);
    }
}
