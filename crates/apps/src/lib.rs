//! Applications of the MATE machinery beyond n-ary equi-join discovery.
//!
//! §1 of the paper: "the methods are readily adaptable for duplicate table
//! discovery and union table discovery"; the conclusion adds similarity
//! joins as future work ("the false positives caused by Xash were those that
//! are syntactically similar to the actual key values"). This crate
//! implements all three on top of the same inverted index and super keys:
//!
//! * [`union`] — top-k *unionable* table search: column-to-column value
//!   overlap with a greedy one-to-one column matching.
//! * [`dedup`] — duplicate row/table detection using super keys as an exact
//!   prefilter (equal rows ⇒ equal super keys).
//! * [`simjoin`] — similarity-join discovery: a slack-tolerant containment
//!   check surfaces rows whose keys *almost* match, verified by edit
//!   distance.

#![warn(missing_docs)]

pub mod dedup;
pub mod simjoin;
pub mod union;

pub use dedup::{find_duplicate_rows, find_duplicate_tables, DuplicateTable};
pub use simjoin::{edit_distance, ScanStats, SimilarityJoinDiscovery, SimilarityMatch};
pub use union::{UnionResult, UnionSearch};
