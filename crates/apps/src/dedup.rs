//! Duplicate detection with super keys as a prefilter.
//!
//! §1 of the paper: "For duplicate table detection, our hash function could
//! serve as a prefilter for finding similar records." The key property is
//! exactness on equality: two rows with the same multiset of values have
//! *identical* super keys (OR-aggregation is order-independent), so hash
//! equality buckets candidate rows and only bucket members need value-level
//! comparison.

use mate_hash::fx::FxHashMap;
use mate_index::InvertedIndex;
use mate_table::{Corpus, RowId, Table, TableId};

/// A pair of tables flagged as duplicates.
#[derive(Debug, Clone, PartialEq)]
pub struct DuplicateTable {
    /// First table (lower id).
    pub a: TableId,
    /// Second table.
    pub b: TableId,
    /// Fraction of `a`'s rows that have an identical row in `b` (by value
    /// multiset, column order ignored).
    pub row_overlap: f64,
}

/// Finds duplicate rows *within* one table: groups of row ids whose value
/// multisets are identical (column order ignored). Super keys bucket the
/// candidates; exact comparison confirms.
pub fn find_duplicate_rows(table: &Table, index: &InvertedIndex, tid: TableId) -> Vec<Vec<RowId>> {
    let mut buckets: FxHashMap<&[u64], Vec<RowId>> = FxHashMap::default();
    for r in 0..table.num_rows() {
        buckets
            .entry(index.superkey(tid, RowId::from(r)))
            .or_default()
            .push(RowId::from(r));
    }
    let mut out = Vec::new();
    for rows in buckets.into_values() {
        if rows.len() < 2 {
            continue;
        }
        // Exact verification inside the bucket.
        let mut groups: Vec<(Vec<String>, Vec<RowId>)> = Vec::new();
        for &r in &rows {
            let mut key: Vec<String> = table.row_iter(r).map(str::to_string).collect();
            key.sort_unstable();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ids)) => ids.push(r),
                None => groups.push((key, vec![r])),
            }
        }
        for (_, ids) in groups {
            if ids.len() >= 2 {
                out.push(ids);
            }
        }
    }
    out.sort_unstable_by_key(|g| g[0]);
    out
}

/// Finds pairs of corpus tables whose rows overlap by at least
/// `min_overlap` (fraction of the smaller table's rows), using super-key
/// equality as the prefilter.
pub fn find_duplicate_tables(
    corpus: &Corpus,
    index: &InvertedIndex,
    min_overlap: f64,
) -> Vec<DuplicateTable> {
    // Bucket all rows of all tables by super key.
    let mut buckets: FxHashMap<&[u64], Vec<(TableId, RowId)>> = FxHashMap::default();
    for (tid, table) in corpus.iter() {
        for r in 0..table.num_rows() {
            let sk = index.superkey(tid, RowId::from(r));
            // Skip all-empty rows: they carry no evidence.
            if sk.iter().all(|&w| w == 0) {
                continue;
            }
            buckets.entry(sk).or_default().push((tid, RowId::from(r)));
        }
    }

    // Count confirmed equal-row pairs per table pair.
    let mut pair_counts: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    for locs in buckets.into_values() {
        if locs.len() < 2 {
            continue;
        }
        // Group by normalized row content.
        type Group<'a> = (Vec<&'a str>, Vec<(TableId, RowId)>);
        let mut groups: Vec<Group> = Vec::new();
        for (tid, r) in locs {
            let mut key: Vec<&str> = corpus.table(tid).row_iter(r).collect();
            key.sort_unstable();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ids)) => ids.push((tid, r)),
                None => groups.push((key, vec![(tid, r)])),
            }
        }
        for (_, ids) in groups {
            // For each pair of distinct tables in the group, count one
            // matched row occurrence (per row of the first table).
            let mut tables: Vec<u32> = ids.iter().map(|(t, _)| t.0).collect();
            tables.sort_unstable();
            tables.dedup();
            for i in 0..tables.len() {
                for j in i + 1..tables.len() {
                    *pair_counts.entry((tables[i], tables[j])).or_insert(0) += 1;
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((a, b), matched) in pair_counts {
        let rows_a = corpus.table(TableId(a)).num_rows();
        let rows_b = corpus.table(TableId(b)).num_rows();
        let denom = rows_a.min(rows_b).max(1);
        let overlap = matched as f64 / denom as f64;
        if overlap >= min_overlap {
            out.push(DuplicateTable {
                a: TableId(a),
                b: TableId(b),
                row_overlap: overlap,
            });
        }
    }
    out.sort_unstable_by(|x, y| {
        y.row_overlap
            .partial_cmp(&x.row_overlap)
            .unwrap()
            .then(x.a.0.cmp(&y.a.0))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    #[test]
    fn duplicate_rows_in_table() {
        let mut corpus = Corpus::new();
        let tid = corpus.add_table(
            TableBuilder::new("t", ["a", "b"])
                .row(["x", "y"])
                .row(["p", "q"])
                .row(["y", "x"]) // same multiset as row 0
                .row(["x", "y"]) // exact duplicate of row 0
                .build(),
        );
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        let groups = find_duplicate_rows(corpus.table(tid), &index, tid);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![RowId(0), RowId(2), RowId(3)]);
    }

    #[test]
    fn duplicate_tables_found() {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("orig", ["a", "b"])
                .row(["k1", "v1"])
                .row(["k2", "v2"])
                .row(["k3", "v3"])
                .build(),
        );
        // A shuffled-column copy.
        corpus.add_table(
            TableBuilder::new("copy", ["b", "a"])
                .row(["v1", "k1"])
                .row(["v3", "k3"])
                .row(["v2", "k2"])
                .build(),
        );
        // Unrelated table.
        corpus.add_table(TableBuilder::new("other", ["x"]).row(["zzz"]).build());
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        let dups = find_duplicate_tables(&corpus, &index, 0.8);
        assert_eq!(dups.len(), 1);
        assert_eq!((dups[0].a, dups[0].b), (TableId(0), TableId(1)));
        assert!((dups[0].row_overlap - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_duplicates_below_threshold_excluded() {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("a", ["x", "y"])
                .row(["1", "2"])
                .row(["3", "4"])
                .build(),
        );
        corpus.add_table(
            TableBuilder::new("b", ["x", "y"])
                .row(["1", "2"])
                .row(["9", "9"])
                .build(),
        );
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        assert!(find_duplicate_tables(&corpus, &index, 0.8).is_empty());
        let loose = find_duplicate_tables(&corpus, &index, 0.4);
        assert_eq!(loose.len(), 1);
        assert!((loose[0].row_overlap - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hash_collisions_do_not_create_false_duplicates() {
        // Different rows may share super keys (collision); the exact
        // verification layer must reject them.
        let mut corpus = Corpus::new();
        let tid = corpus.add_table(
            TableBuilder::new("t", ["a"])
                .row(["ab"])
                .row(["ba"]) // same chars, same length → likely same Xash bits
                .build(),
        );
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        let groups = find_duplicate_rows(corpus.table(tid), &index, tid);
        assert!(groups.is_empty(), "ab and ba are not duplicates");
    }
}
