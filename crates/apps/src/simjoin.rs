//! Similarity-join discovery (the paper's future-work direction).
//!
//! The conclusion observes that XASH's false positives are *syntactically
//! similar* values ("<brooklyn, cambridge> instead of <brooklyn, bay
//! ridge>") — the filter's weakness for equi-joins is a feature for
//! similarity joins. This module turns it around: the containment check is
//! relaxed to tolerate a few uncovered query bits (a small edit changes at
//! most a few XASH bits: one character bit plus possibly the length bit and
//! the rotation offset), and candidates are verified with edit distance.

use mate_hash::{HashBits, RowHasher};
use mate_index::InvertedIndex;
use mate_table::{ColId, Corpus, RowId, Table, TableId};
use std::cell::Cell;

/// Prefilter effectiveness of a corpus-wide similarity scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Corpus rows scanned.
    pub rows_scanned: usize,
    /// Pairs that passed the relaxed super-key check and ran the edit-
    /// distance verification.
    pub rows_verified: usize,
}

/// A verified similarity match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimilarityMatch {
    /// Candidate table.
    pub table: TableId,
    /// Candidate row.
    pub row: RowId,
    /// Query row.
    pub query_row: RowId,
    /// Sum of edit distances over the key values (0 = exact match).
    pub total_distance: usize,
    /// The matched candidate values, one per key column.
    pub matched_values: Vec<String>,
}

/// Levenshtein edit distance (two-row dynamic program).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Counts query bits not covered by the super key (0 = full containment).
fn uncovered_bits(superkey: &[u64], query: &HashBits) -> u32 {
    query
        .words()
        .iter()
        .zip(superkey)
        .map(|(q, s)| (q & !s).count_ones())
        .sum()
}

/// Similarity-join discovery over a MATE index.
pub struct SimilarityJoinDiscovery<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    hasher: &'a dyn RowHasher,
    /// Query super-key bits allowed to be uncovered during prefiltering.
    pub bit_slack: u32,
    /// Maximum total edit distance across key values for a verified match.
    pub max_distance: usize,
    /// Pairs verified (i.e. passing the prefilter) in the last `scan_table`.
    last_verified: Cell<usize>,
}

impl<'a> SimilarityJoinDiscovery<'a> {
    /// Creates a discovery with the given slack parameters.
    pub fn new(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        hasher: &'a dyn RowHasher,
        bit_slack: u32,
        max_distance: usize,
    ) -> Self {
        assert_eq!(
            hasher.hash_size(),
            index.hash_size(),
            "hasher size mismatch"
        );
        SimilarityJoinDiscovery {
            corpus,
            index,
            hasher,
            bit_slack,
            max_distance,
            last_verified: Cell::new(0),
        }
    }

    /// Finds rows of `table` whose key values approximately match the query
    /// rows: the relaxed super-key check prefilters, edit distance verifies.
    ///
    /// Unlike exact discovery this scans the given table's rows directly
    /// (similarity joins cannot use value-equality posting lists — a typo'd
    /// value has no posting), which is exactly why the super-key prefilter
    /// matters here.
    pub fn scan_table(
        &self,
        tid: TableId,
        query: &Table,
        q_cols: &[ColId],
    ) -> Vec<SimilarityMatch> {
        let candidate = self.corpus.table(tid);
        let mut out = Vec::new();

        // Precompute query key tuples and their super keys.
        let mut qkeys: Vec<(RowId, Vec<&str>, HashBits)> = Vec::new();
        'rows: for r in 0..query.num_rows() {
            let mut tuple = Vec::with_capacity(q_cols.len());
            for &q in q_cols {
                let v = query.cell(RowId::from(r), q);
                if v.is_empty() {
                    continue 'rows;
                }
                tuple.push(v);
            }
            let mut sk = HashBits::zero(self.hasher.hash_size());
            for v in &tuple {
                sk.or_assign(&self.hasher.hash_value(v));
            }
            qkeys.push((RowId::from(r), tuple, sk));
        }

        self.last_verified.set(0);
        for tr in 0..candidate.num_rows() {
            let superkey = self.index.superkey(tid, RowId::from(tr));
            for (qrow, tuple, qsk) in &qkeys {
                if uncovered_bits(superkey, qsk) > self.bit_slack {
                    continue;
                }
                self.last_verified.set(self.last_verified.get() + 1);
                // Verification: greedily match each key value to its closest
                // cell (injectively), summing edit distances.
                if let Some((dist, matched)) =
                    self.verify_similar(candidate, RowId::from(tr), tuple)
                {
                    if dist <= self.max_distance {
                        out.push(SimilarityMatch {
                            table: tid,
                            row: RowId::from(tr),
                            query_row: *qrow,
                            total_distance: dist,
                            matched_values: matched,
                        });
                    }
                }
            }
        }
        out.sort_unstable_by_key(|m| (m.total_distance, m.row.0, m.query_row.0));
        out
    }

    /// Scans the whole corpus, ranking tables by their number of verified
    /// similarity matches. Returns `(table, matches)` pairs sorted by match
    /// count descending, plus prefilter statistics.
    ///
    /// This is inherently a full scan (a typo'd value has no posting list to
    /// fetch), which is exactly the workload where the super-key prefilter
    /// pays: rows failing the relaxed containment check skip the edit-
    /// distance dynamic program entirely.
    pub fn scan_corpus(
        &self,
        query: &Table,
        q_cols: &[ColId],
        top_k: usize,
    ) -> (Vec<(TableId, Vec<SimilarityMatch>)>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut results: Vec<(TableId, Vec<SimilarityMatch>)> = Vec::new();
        for (tid, table) in self.corpus.iter() {
            stats.rows_scanned += table.num_rows();
            let matches = self.scan_table(tid, query, q_cols);
            stats.rows_verified += self.last_verified.get();
            if !matches.is_empty() {
                results.push((tid, matches));
            }
        }
        results.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0 .0.cmp(&b.0 .0)));
        results.truncate(top_k);
        (results, stats)
    }

    /// Greedy injective assignment of key values to row cells minimizing
    /// per-value edit distance. Returns `(total distance, matched values)`.
    fn verify_similar(
        &self,
        candidate: &Table,
        row: RowId,
        tuple: &[&str],
    ) -> Option<(usize, Vec<String>)> {
        let cells: Vec<&str> = candidate.row_iter(row).collect();
        let mut used = vec![false; cells.len()];
        let mut total = 0usize;
        let mut matched = Vec::with_capacity(tuple.len());
        for key in tuple {
            let mut best: Option<(usize, usize)> = None; // (dist, cell idx)
            for (ci, cell) in cells.iter().enumerate() {
                if used[ci] || cell.is_empty() {
                    continue;
                }
                // Cheap length bound before the DP.
                let len_gap = key.len().abs_diff(cell.len());
                if len_gap > self.max_distance {
                    continue;
                }
                let d = edit_distance(key, cell);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, ci));
                }
            }
            let (d, ci) = best?;
            if d > self.max_distance {
                return None;
            }
            used[ci] = true;
            total += d;
            matched.push(cells[ci].to_string());
        }
        Some((total, matched))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::TableBuilder;

    fn setup() -> (Corpus, InvertedIndex, Xash) {
        let mut corpus = Corpus::new();
        corpus.add_table(
            TableBuilder::new("places", ["city", "borough"])
                .row(["brooklyn", "bay ridge"])
                .row(["brooklin", "bay ridge"]) // typo'd city
                .row(["boston", "back bay"])
                .build(),
        );
        let hasher = Xash::new(HashSize::B128);
        let index = IndexBuilder::new(hasher).build(&corpus);
        (corpus, index, hasher)
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "ab"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("brooklyn", "brooklin"), 1);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn finds_exact_and_typo_matches() {
        let (corpus, index, hasher) = setup();
        let query = TableBuilder::new("q", ["c", "b"])
            .row(["brooklyn", "bay ridge"])
            .build();
        let sim = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 6, 1);
        let matches = sim.scan_table(TableId(0), &query, &[ColId(0), ColId(1)]);
        let rows: Vec<u32> = matches.iter().map(|m| m.row.0).collect();
        assert!(rows.contains(&0), "exact match found");
        assert!(rows.contains(&1), "typo match found");
        assert!(!rows.contains(&2), "boston is not similar");
        // Exact match sorts first (distance 0).
        assert_eq!(matches[0].row, RowId(0));
        assert_eq!(matches[0].total_distance, 0);
    }

    #[test]
    fn zero_slack_zero_distance_is_exact_join() {
        let (corpus, index, hasher) = setup();
        let query = TableBuilder::new("q", ["c", "b"])
            .row(["brooklyn", "bay ridge"])
            .build();
        let sim = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 0, 0);
        let matches = sim.scan_table(TableId(0), &query, &[ColId(0), ColId(1)]);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].row, RowId(0));
    }

    #[test]
    fn distance_budget_enforced() {
        let (corpus, index, hasher) = setup();
        let query = TableBuilder::new("q", ["c", "b"])
            .row(["brooklXX", "bay ridge"]) // distance 2 from brooklyn
            .build();
        let strict = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 12, 1);
        assert!(strict
            .scan_table(TableId(0), &query, &[ColId(0), ColId(1)])
            .is_empty());
        let loose = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 12, 2);
        assert!(!loose
            .scan_table(TableId(0), &query, &[ColId(0), ColId(1)])
            .is_empty());
    }

    #[test]
    fn scan_corpus_ranks_tables_and_reports_prefilter_savings() {
        let (mut corpus, _, hasher) = setup();
        // Add a second table with one more typo'd match and a noise table.
        corpus.add_table(
            TableBuilder::new("more_places", ["city", "borough"])
                .row(["brooklyn", "bay ridgx"]) // distance-1 borough
                .row(["tokyo", "shibuya"])
                .build(),
        );
        corpus.add_table(
            TableBuilder::new("noise", ["a", "b"])
                .row(["zzzz", "wwww"])
                .row(["qqqq", "rrrr"])
                .build(),
        );
        let index = mate_index::IndexBuilder::new(hasher).build(&corpus);
        let query = TableBuilder::new("q", ["c", "b"])
            .row(["brooklyn", "bay ridge"])
            .build();
        let sim = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 4, 1);
        let (results, stats) = sim.scan_corpus(&query, &[ColId(0), ColId(1)], 5);

        // Table 0 (two close rows) outranks table 1 (one close row).
        assert_eq!(results[0].0, TableId(0));
        assert_eq!(results[0].1.len(), 2);
        assert_eq!(results[1].0, TableId(1));
        assert_eq!(results[1].1.len(), 1);
        // The noise table produced no matches.
        assert!(results.iter().all(|(t, _)| *t != TableId(2)));
        // The prefilter skipped at least the noise rows.
        assert!(stats.rows_verified < stats.rows_scanned, "{stats:?}");
    }

    #[test]
    fn scan_corpus_zero_slack_only_exact() {
        let (corpus, index, hasher) = setup();
        let query = TableBuilder::new("q", ["c", "b"])
            .row(["brooklyn", "bay ridge"])
            .build();
        let sim = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 0, 0);
        let (results, _) = sim.scan_corpus(&query, &[ColId(0), ColId(1)], 5);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].1.len(), 1);
        assert_eq!(results[0].1[0].total_distance, 0);
    }

    #[test]
    fn prefilter_reduces_verifications_without_losing_close_matches() {
        // With generous slack the verified result set must contain everything
        // the slack-0 filter finds.
        let (corpus, index, hasher) = setup();
        let query = TableBuilder::new("q", ["c", "b"])
            .row(["brooklyn", "bay ridge"])
            .build();
        let tight = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 0, 1).scan_table(
            TableId(0),
            &query,
            &[ColId(0), ColId(1)],
        );
        let loose = SimilarityJoinDiscovery::new(&corpus, &index, &hasher, 16, 1).scan_table(
            TableId(0),
            &query,
            &[ColId(0), ColId(1)],
        );
        for m in &tight {
            assert!(loose.contains(m));
        }
        assert!(loose.len() >= tight.len());
    }
}
