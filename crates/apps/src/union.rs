//! Union table search on the MATE index.
//!
//! Two tables are unionable when their columns can be aligned so that
//! corresponding columns draw from the same value domains (Nargesian et al.,
//! "Table union search on open data", PVLDB 2018). The same inverted index
//! that powers join discovery answers this directly: for every query column,
//! posting lists reveal which candidate columns share values. The final
//! score aligns columns one-to-one (greedy on overlap, which is within a
//! factor 2 of the optimal assignment) and sums the per-column overlaps.

use mate_hash::fx::FxHashMap;
use mate_index::InvertedIndex;
use mate_table::{ColId, Table, TableId};

/// One unionable candidate table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionResult {
    /// The candidate table.
    pub table: TableId,
    /// Sum of distinct-value overlaps over the aligned column pairs.
    pub score: u64,
    /// The column alignment: `(query column, candidate column, overlap)`.
    pub alignment: Vec<(ColId, ColId, u64)>,
}

/// Top-k unionable-table search over an [`InvertedIndex`].
#[derive(Debug)]
pub struct UnionSearch<'a> {
    index: &'a InvertedIndex,
}

impl<'a> UnionSearch<'a> {
    /// Creates a search over the given index.
    pub fn new(index: &'a InvertedIndex) -> Self {
        UnionSearch { index }
    }

    /// Finds the top-`k` tables unionable with `query`, considering all its
    /// columns.
    pub fn top_k(&self, query: &Table, k: usize) -> Vec<UnionResult> {
        // Per (candidate table, query col, candidate col): distinct overlap.
        let mut overlap: FxHashMap<(u32, u32, u32), u64> = FxHashMap::default();
        for (qc, col) in query.columns().iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for v in &col.values {
                if v.is_empty() || !seen.insert(v.as_str()) {
                    continue;
                }
                if let Some(pl) = self.index.posting_list(v) {
                    // Count each (table, col) once per distinct value.
                    let mut per_col = std::collections::HashSet::new();
                    for e in pl {
                        per_col.insert((e.table.0, e.col.0));
                    }
                    for (t, c) in per_col {
                        *overlap.entry((t, qc as u32, c)).or_insert(0) += 1;
                    }
                }
            }
        }

        // Group per candidate table.
        let mut per_table: FxHashMap<u32, Vec<(u32, u32, u64)>> = FxHashMap::default();
        for ((t, qc, c), n) in overlap {
            per_table.entry(t).or_default().push((qc, c, n));
        }

        let mut results: Vec<UnionResult> = per_table
            .into_iter()
            .map(|(t, mut edges)| {
                // Greedy one-to-one matching by descending overlap.
                edges.sort_unstable_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
                let mut used_q = std::collections::HashSet::new();
                let mut used_c = std::collections::HashSet::new();
                let mut alignment = Vec::new();
                let mut score = 0;
                for (qc, c, n) in edges {
                    if used_q.contains(&qc) || used_c.contains(&c) {
                        continue;
                    }
                    used_q.insert(qc);
                    used_c.insert(c);
                    score += n;
                    alignment.push((ColId(qc), ColId(c), n));
                }
                alignment.sort_unstable_by_key(|(qc, _, _)| qc.0);
                UnionResult {
                    table: TableId(t),
                    score,
                    alignment,
                }
            })
            .collect();
        results.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.table.0.cmp(&b.table.0)));
        results.truncate(k);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mate_hash::{HashSize, Xash};
    use mate_index::IndexBuilder;
    use mate_table::{Corpus, TableBuilder};

    fn setup() -> (Corpus, InvertedIndex) {
        let mut corpus = Corpus::new();
        // Highly unionable: same domains, swapped column order.
        corpus.add_table(
            TableBuilder::new("people_eu", ["country", "name"])
                .row(["germany", "helmut"])
                .row(["france", "marie"])
                .row(["spain", "carlos"])
                .build(),
        );
        // Partially unionable: one shared domain.
        corpus.add_table(
            TableBuilder::new("capitals", ["country", "capital"])
                .row(["germany", "berlin"])
                .row(["france", "paris"])
                .build(),
        );
        // Unrelated.
        corpus.add_table(
            TableBuilder::new("numbers", ["x", "y"])
                .row(["1", "2"])
                .row(["3", "4"])
                .build(),
        );
        let index = IndexBuilder::new(Xash::new(HashSize::B128)).build(&corpus);
        (corpus, index)
    }

    #[test]
    fn ranks_by_alignment_score() {
        let (_, index) = setup();
        let query = TableBuilder::new("q", ["person", "nation"])
            .row(["helmut", "germany"])
            .row(["marie", "france"])
            .row(["carlos", "spain"])
            .build();
        let results = UnionSearch::new(&index).top_k(&query, 3);
        assert_eq!(results[0].table, TableId(0));
        assert_eq!(results[0].score, 6); // 3 names + 3 countries
        assert_eq!(results[1].table, TableId(1));
        assert_eq!(results[1].score, 2); // germany, france
        assert!(results.iter().all(|r| r.table != TableId(2)));
    }

    #[test]
    fn alignment_is_injective() {
        let (_, index) = setup();
        let query = TableBuilder::new("q", ["a", "b"])
            .row(["germany", "france"]) // both columns overlap the same
            .row(["spain", "germany"]) //   candidate column
            .build();
        let results = UnionSearch::new(&index).top_k(&query, 1);
        let r = &results[0];
        let mut cand_cols: Vec<u32> = r.alignment.iter().map(|(_, c, _)| c.0).collect();
        cand_cols.dedup();
        let dedup_len = cand_cols.len();
        assert_eq!(dedup_len, r.alignment.len(), "candidate column used twice");
    }

    #[test]
    fn empty_query() {
        let (_, index) = setup();
        let query = TableBuilder::new("q", ["a"]).row(["zzz-nothing"]).build();
        assert!(UnionSearch::new(&index).top_k(&query, 5).is_empty());
    }

    #[test]
    fn k_truncates() {
        let (_, index) = setup();
        let query = TableBuilder::new("q", ["c"]).row(["germany"]).build();
        let results = UnionSearch::new(&index).top_k(&query, 1);
        assert_eq!(results.len(), 1);
    }
}
